"""Vectorized batched trial engines.

Serial Monte-Carlo sweeps pay per-trial Python overhead: 32 cobra
cover runs are 32 Python step loops, each issuing a dozen small numpy
calls per step.  The engine here advances *all* trials in one flat
``(trials * n,)`` frontier — trial ``r``'s copy of vertex ``v`` lives
at index ``r*n + v`` — so each global step does one batched neighbor
draw and one boolean-scatter coalescing pass for every trial at once
(the same idiom as the serial :func:`repro.core.cobra.cobra_step`
kernel, amortized across trials).
(:func:`repro.walks.simple.rw_cover_trials` plays the same role for
the simple walk.)

Hot-path notes (measured on the benchmark machine, not guessed):

* index arrays stay ``int64`` end to end — numpy silently converts
  any other integer dtype to ``intp`` per fancy-indexing call, which
  doubles the cost of the scatter;
* per-flat-id ``start``/``degree``/``base``/``row`` lookup tables are
  tiled per trial (a few hundred KB — cache resident) so the hot loop
  needs no modulo/divide;
* all per-step temporaries live in a preallocated buffer pool
  (``take(..., out=)``, in-place ufuncs) — at these sizes allocator
  traffic is a measurable fraction of a step;
* for ``k == 2`` both neighbor draws come from one uniform variate
  (``i = ⌊u·d⌋``; the leftover fraction is itself uniform).  The
  split is exact in floating point — ``u·d`` never rounds up to ``d``
  and the fractional part is exactly representable — and the second
  draw is uniform up to ``d²·2^-24`` (float32, used for ``d ≤ 64``)
  or ``d²·2^-53`` (float64 otherwise), far below Monte-Carlo
  resolution.

Batched runs are distributionally identical to serial runs (the same
process, one interleaved RNG stream) but not seed-for-seed identical
to per-trial streams; use the facade's ``strategy="serial"`` when you
need bit-exact parity with the legacy per-process helpers.
"""

from __future__ import annotations

import numpy as np

from ..graphs.base import Graph
from .rng import SeedLike, resolve_rng

__all__ = ["batched_cobra_cover_trials"]


def batched_cobra_cover_trials(
    graph: Graph,
    *,
    trials: int,
    k: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Cover times of *trials* independent k-cobra runs, advanced in
    lock-step; finished trials are compacted out so the tail of slow
    trials doesn't pay for the fast ones.

    Returns ``float64[trials]`` cover times with ``np.nan`` marking
    budget exhaustion — the same contract as
    :func:`repro.core.hitting.cobra_cover_trials`.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    if k < 1:
        raise ValueError(f"branching factor k must be >= 1, got {k}")
    n = graph.n
    if n and graph.min_degree <= 0:
        raise ValueError("cannot sample a neighbor of an isolated vertex")
    start_arr = np.unique(np.atleast_1d(np.asarray(start, dtype=np.int64)))
    if start_arr.size == 0:
        raise ValueError("need at least one start vertex")
    if start_arr.min() < 0 or start_arr.max() >= n:
        raise ValueError("start vertex out of range")
    if max_steps is None:
        from ..core.cobra import _default_budget

        max_steps = _default_budget(n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    if start_arr.size == n:
        out[:] = 0.0
        return out

    pair = k == 2
    if pair:
        ftype = np.float32 if graph.max_degree <= 64 else np.float64
    else:
        ftype = np.float32 if graph.max_degree < (1 << 20) else np.float64
    indices = graph.indices
    nn = np.int64(n)

    def build_tables(a: int):
        """Per-flat-id lookup tables (gathers from these replace int64
        divides in the hot loop)."""
        ptr_s = np.tile(graph.indptr[:-1], a)
        deg_s = np.tile(graph.degrees.astype(ftype), a)
        base_s = np.repeat(np.arange(a, dtype=np.int64) * n, n)
        row_s = np.repeat(np.arange(a, dtype=np.int64), n)
        return ptr_s, deg_s, base_s, row_s

    a = trials  # still-running trial count; `alive` maps rows -> trial ids
    alive = np.arange(trials)
    ptr_s, deg_s, base_s, row_s = build_tables(a)
    covered = np.zeros(a * n, dtype=bool)
    front = (
        np.repeat(np.arange(a, dtype=np.int64) * n, start_arr.size)
        + np.tile(start_arr, a)
    )
    covered[front] = True
    count = np.full(a, start_arr.size, dtype=np.int64)
    scratch = np.zeros(a * n, dtype=bool)

    # reusable per-step temporaries (frontier size never exceeds a*n)
    cap = a * n
    # clearing the dedup mask: a fresh calloc beats an O(|front|)
    # scatter-reset while the mask is small (measured 0.4µs vs 8µs at
    # 35KB), but is an O(a*n) memset per step — switch to the scatter
    # reset once the mask outgrows cache
    reset_by_scatter = cap > (1 << 21)
    b_start = np.empty(cap, np.int64)
    b_deg = np.empty(cap, ftype)
    b_base = np.empty(cap, np.int64)
    b_u = np.empty(cap, ftype)
    b_first = np.empty(cap, ftype)
    b_i1 = np.empty(cap, np.int64)
    b_i2 = np.empty(cap, np.int64)
    b_p1 = np.empty(cap, np.int64)
    b_p2 = np.empty(cap, np.int64)
    b_seen = np.empty(cap, bool)

    for t in range(1, max_steps + 1):
        F = front.size
        starts = ptr_s.take(front, mode="clip", out=b_start[:F])
        degs = deg_s.take(front, mode="clip", out=b_deg[:F])
        base = base_s.take(front, mode="clip", out=b_base[:F])
        if pair:
            u = rng.random(out=b_u[:F], dtype=ftype)
            u *= degs
            first = np.floor(u, out=b_first[:F])
            u -= first  # leftover fraction: uniform again
            u *= degs
            i1 = b_i1[:F]
            np.copyto(i1, first, casting="unsafe")  # trunc == floor (>= 0)
            i1 += starts
            i2 = b_i2[:F]
            np.copyto(i2, u, casting="unsafe")
            i2 += starts
            p1 = indices.take(i1, mode="clip", out=b_p1[:F])
            p1 += base
            p2 = indices.take(i2, mode="clip", out=b_p2[:F])
            p2 += base
            scratch[p1] = True
            scratch[p2] = True
        else:
            u = rng.random((k, F), dtype=ftype)
            nbrs = indices.take(starts + (u * degs).astype(np.int64), mode="clip")
            scratch[(base + nbrs).ravel()] = True
        front = scratch.nonzero()[0]
        if reset_by_scatter:
            scratch[front] = False
        else:
            scratch = np.zeros(a * n, dtype=bool)
        seen = covered.take(front, mode="clip", out=b_seen[: front.size])
        np.logical_not(seen, out=seen)
        fresh = front[seen]
        if fresh.size:
            covered[fresh] = True
            count += np.bincount(row_s.take(fresh, mode="clip"), minlength=a)
            done = count == n
            if done.any():
                out[alive[done]] = t
                keep = ~done
                alive = alive[keep]
                a = alive.size
                if a == 0:
                    break
                count = count[keep]
                rows = front // nn
                keep_front = keep[rows]
                remap = np.cumsum(keep) - 1
                front = remap[rows[keep_front]] * n + front[keep_front] % nn
                covered = np.ascontiguousarray(covered.reshape(-1, n)[keep]).reshape(-1)
                ptr_s, deg_s, base_s, row_s = build_tables(a)
                scratch = np.zeros(a * n, dtype=bool)
    return out
