"""Vectorized batched trial engines.

Serial Monte-Carlo sweeps pay per-trial Python overhead: 32 cobra
cover runs are 32 Python step loops, each issuing a dozen small numpy
calls per step.  The engines here advance *all* trials in one flat
``(trials * n,)`` state — trial ``r``'s copy of vertex ``v`` lives at
index ``r*n + v`` — so each global step does one batched neighbor
draw and one boolean-scatter pass for every trial at once (the same
idiom as the serial :func:`repro.core.cobra.cobra_step` kernel,
amortized across trials).
(:func:`repro.walks.simple.rw_cover_trials` plays the same role for
the simple walk.)

Every engine samples through the :class:`repro.graphs.implicit.
NeighborOracle` contract rather than reaching into CSR arrays: a CSR
:class:`~repro.graphs.base.Graph` wraps in the bit-identical adapter
(``as_oracle``), while arithmetic oracles (torus, hypercube,
circulant, Kronecker) answer the same three questions — vertex count,
degrees, neighbor draws — without ever materialising edges, which is
what lets a million-vertex cover cell run in megabytes.

One engine per process family, all on the same flat-frontier idiom:

* :func:`batched_cobra_cover_trials` / :func:`batched_cobra_hit_trials`
  — the cobra frontier, stopped at full coverage or first activation
  of a target vertex;
* :func:`batched_gossip_spread_trials` — push / pull / push-pull rumor
  spreading with incremental boundary tracking (only vertices that can
  still change the state ever draw);
* :func:`batched_parallel_walks_cover_trials` — ``trials × walkers``
  independent walkers advanced by one batched neighbor draw per step;
* :func:`batched_walt_cover_trials` / :func:`batched_walt_hit_trials`
  — Walt's per-vertex pebble groups found sort-free by
  duplicate-scatter on the flat ``trial*n + vertex`` key (groups never
  span trials), replacing the serial kernel's per-trial lexsort;
  stopped at full coverage or first pebble arrival at a target;
* :func:`batched_lazy_cover_trials` — the hold-probability variant of
  the simple-walk engine, run as a time-change: the move chain rides
  the simple-walk engine and the holds are reconstructed as one
  negative-binomial draw per trial;
* :func:`batched_branching_cover_trials` — per-``(trial, vertex)``
  particle counts with the multinomial child split done by binomial
  peeling over neighbor slots; the occupied set is a ragged per-trial
  frontier held as one sorted flat array, and a per-trial population
  cap mirrors the serial renormalisation;
* :func:`batched_coalescing_cover_trials` — shrinking walker sets: one
  neighbor draw moves every surviving walker of every trial, and
  in-step duplicate-scatter (``np.unique`` on the flat
  ``trial*n + vertex`` key) merges co-located walkers without ever
  crossing trial boundaries;
* :func:`batched_biased_cover_trials` — the ε-/inverse-degree-biased
  walk: one position row per trial, a precomputed controller table,
  two uniform draws per trial-step (bias coin + neighbor index);
* :func:`batched_lazy_hit_trials` — the hitting-time companion of the
  lazy cover engine, the same jump-chain time-change over
  :func:`repro.walks.simple.rw_hitting_trials`.

Two fixed-horizon companions feed experiments that consume state
rather than stopping times: :func:`batched_cobra_active_sizes`
(per-step ``|S_t|`` trajectories) and
:func:`batched_walt_positions_at` (pebble positions after exactly
``steps`` moves).

Engines whose per-step cost scales with ``alive · n`` (cobra, gossip,
Walt) compact finished trials out so the tail of slow trials doesn't
pay for the fast ones; the parallel-walk engine keeps its (tiny)
state dense, mirroring ``rw_cover_trials``.

Hot-path notes (measured on the benchmark machine, not guessed):

* index arrays stay ``int64`` end to end — numpy silently converts
  any other integer dtype to ``intp`` per fancy-indexing call, which
  doubles the cost of the scatter;
* flat ids decompose arithmetically (``v = front % n``,
  ``base = front - v``) against one **size-n** degree table shared by
  all trials — the old per-flat-id tables tiled
  ``start``/``degree``/``base``/``row`` per trial, an ``O(trials·n)``
  allocation that capped scaling long before the edge arrays did;
* per-``(trial, vertex)`` visited state is **bit-packed** at scale
  (:class:`repro.sim.bitmask.BitMask`, ``n/8`` bytes per trial, via
  the :func:`~repro.sim.bitmask.visited_mask` factory — small runs
  keep a plain boolean backend, skipping the packing arithmetic where
  the whole mask fits in 1 MB anyway) and cover counts stream from
  each step's freshly set bits — the dense boolean ledgers this
  replaces were the last unconditional ``O(trials·n)`` byte arrays on
  the cover path;
* per-step temporaries live in a grow-on-demand buffer pool
  (``take(..., out=)``, in-place ufuncs) sized by the *observed*
  frontier, never preallocated at ``trials·n``;
* for ``k == 2`` both neighbor draws come from one uniform variate
  (``i = ⌊u·d⌋``; the leftover fraction is itself uniform).  The
  split is exact in floating point — ``u·d`` never rounds up to ``d``
  and the fractional part is exactly representable — and the second
  draw is uniform up to ``d²·2^-24`` (float32, used for ``d ≤ 64``)
  or ``d²·2^-53`` (float64 otherwise), far below Monte-Carlo
  resolution.

Batched runs are distributionally identical to serial runs (the same
process, one interleaved RNG stream) but not seed-for-seed identical
to per-trial streams; use the facade's ``strategy="serial"`` when you
need bit-exact parity with the legacy per-process helpers.  On CSR
input the oracle adapter reproduces the pre-oracle engines'
streams bit for bit, and each arithmetic oracle is seed-for-seed
identical to the adapter over its materialised graph
(``tests/graphs/test_implicit.py``).
"""

from __future__ import annotations

import numpy as np

from ..graphs.base import Graph
from ..graphs.implicit import NeighborOracle, as_oracle
from ..obs.trace import current_tracer
from .bitmask import visited_mask
from .rng import SeedLike, resolve_rng

__all__ = [
    "batched_biased_cover_trials",
    "batched_branching_cover_trials",
    "batched_coalescing_cover_trials",
    "batched_cobra_active_sizes",
    "batched_cobra_cover_trials",
    "batched_cobra_hit_trials",
    "batched_gossip_hit_trials",
    "batched_gossip_spread_trials",
    "batched_lazy_cover_trials",
    "batched_lazy_hit_trials",
    "batched_parallel_walks_cover_trials",
    "batched_walt_cover_trials",
    "batched_walt_hit_trials",
    "batched_walt_positions_at",
]

GraphLike = Graph | NeighborOracle


def _degree_table(oracle: NeighborOracle, ftype=np.float64) -> np.ndarray:
    """Size-``n`` per-vertex degree table in the engine's float width.

    Shared by every trial: the hot loops gather from it after the
    arithmetic flat-id decomposition ``v = front % n`` — the
    trial-count-independent replacement for the old per-flat-id tiled
    tables."""
    return oracle.degree(np.arange(oracle.n, dtype=np.int64)).astype(ftype)


class _BufferPool:
    """Grow-on-demand named scratch buffers for the hot loops.

    ``get(name, size, dtype)`` hands back a contiguous length-*size*
    slice of a pooled array, reallocating (geometric growth) only when
    the request outgrows the pool — so steady-state steps do zero
    allocator traffic while nothing is ever preallocated at
    ``trials · n``."""

    __slots__ = ("_bufs",)

    def __init__(self) -> None:
        self._bufs: dict[str, np.ndarray] = {}

    def get(self, name: str, size: int, dtype) -> np.ndarray:
        """A contiguous ``dtype[size]`` slice under *name*."""
        buf = self._bufs.get(name)
        if buf is None or buf.size < size or buf.dtype != np.dtype(dtype):
            cap = size if buf is None or buf.dtype != np.dtype(dtype) else max(
                size, 2 * buf.size
            )
            buf = np.empty(cap, dtype)
            self._bufs[name] = buf
        return buf[:size]


def _validated_start(oracle: NeighborOracle, start) -> np.ndarray:
    """Facade-style ``start`` normalised to a unique sorted vertex array."""
    start_arr = np.unique(np.atleast_1d(np.asarray(start, dtype=np.int64)))
    if start_arr.size == 0:
        raise ValueError("need at least one start vertex")
    if start_arr.min() < 0 or start_arr.max() >= oracle.n:
        raise ValueError("start vertex out of range")
    return start_arr


def _check_samplable(oracle: NeighborOracle, trials: int) -> None:
    if trials < 1:
        raise ValueError("need at least one trial")
    if oracle.n and oracle.min_degree <= 0:
        raise ValueError("cannot sample a neighbor of an isolated vertex")


def _cobra_ftype(oracle: NeighborOracle, k: int) -> tuple[bool, type]:
    """``(pair, ftype)`` for the cobra engines' uniform draws: float32
    while the ``k == 2`` double-draw (degree ≤ 64) or the single-draw
    index (degree < 2^20) stays exact — see the module's hot-path
    notes.  One definition so the cover/hit/trajectory engines can
    never drift apart on the thresholds."""
    pair = k == 2
    if pair:
        return pair, (np.float32 if oracle.max_degree <= 64 else np.float64)
    return pair, (np.float32 if oracle.max_degree < (1 << 20) else np.float64)


def _scatter_cobra_draws(oracle, verts, degs, vbase, k, pair, ftype, rng, scratch):
    """Draw ``k`` uniform neighbors for every frontier vertex and
    scatter their flat destinations into the boolean ``scratch`` mask —
    the unbuffered step shared by the hit and trajectory engines (the
    cover engine keeps its pooled-buffer variant of the same math).
    *verts* are local vertex ids, *vbase* the per-id trial offsets.
    For ``k == 2`` both draws come from one uniform variate (module
    notes)."""
    if pair:
        u = rng.random(verts.size, dtype=ftype)
        u *= degs
        first = np.floor(u)
        u -= first
        u *= degs
        scratch[oracle.neighbor_at(verts, first.astype(np.int64)) + vbase] = True
        scratch[oracle.neighbor_at(verts, u.astype(np.int64)) + vbase] = True
    else:
        u = rng.random((k, verts.size), dtype=ftype)
        nbrs = oracle.neighbor_at(verts[None, :], (u * degs).astype(np.int64))
        scratch[(vbase + nbrs).ravel()] = True


def batched_cobra_cover_trials(
    graph: GraphLike,
    *,
    trials: int,
    k: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Cover times of *trials* independent k-cobra runs, advanced in
    lock-step; finished trials are compacted out so the tail of slow
    trials doesn't pay for the fast ones.

    Under an active :mod:`repro.obs` tracer the engine reports
    ``engine_steps`` (global lock-steps), ``rng_draws`` (uniform
    variates consumed) and ``frontier_peak`` (largest flat frontier)
    counters on the enclosing span; with the default
    :data:`~repro.obs.trace.NULL_TRACER` the taps are dead branches.

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    trials : int
        Number of independent runs.
    k : int
        Cobra branching factor (pebbles sent per active vertex).
    start : int or numpy.ndarray
        Start vertex, or an array of start vertices shared by all
        trials (multi-source).
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    max_steps : int, optional
        Step budget per trial; defaults to the cobra helper's
        ``500·n·log n``-ish budget.

    Returns
    -------
    numpy.ndarray
        ``float64[trials]`` cover times with ``np.nan`` marking budget
        exhaustion — the same contract as
        :func:`repro.core.hitting.cobra_cover_trials`.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if k < 1:
        raise ValueError(f"branching factor k must be >= 1, got {k}")
    n = oracle.n
    start_arr = _validated_start(oracle, start)
    if max_steps is None:
        from ..core.cobra import _default_budget

        max_steps = _default_budget(n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    if start_arr.size == n:
        out[:] = 0.0
        return out

    pair, ftype = _cobra_ftype(oracle, k)
    nn = np.int64(n)
    deg_f = _degree_table(oracle, ftype)

    a = trials  # still-running trial count; `alive` maps rows -> trial ids
    alive = np.arange(trials)
    covered = visited_mask(a, n)
    front = (
        np.repeat(np.arange(a, dtype=np.int64) * n, start_arr.size)
        + np.tile(start_arr, a)
    )
    covered.set_sorted_flat(front)
    count = np.full(a, start_arr.size, dtype=np.int64)
    scratch = np.zeros(a * n, dtype=bool)

    # clearing the dedup mask: a fresh calloc beats an O(|front|)
    # scatter-reset while the mask is small (measured 0.4µs vs 8µs at
    # 35KB), but is an O(a*n) memset per step — switch to the scatter
    # reset once the mask outgrows cache
    reset_by_scatter = a * n > (1 << 21)
    pool = _BufferPool()

    # telemetry taps are plain local accumulators, flushed once after
    # the loop — with the NullTracer default `trace_on` is False and
    # the hot loop carries one dead branch per step, nothing more
    tracer = current_tracer()
    trace_on = tracer.enabled
    obs_steps = obs_draws = obs_fpeak = 0

    for t in range(1, max_steps + 1):
        F = front.size
        if trace_on:
            obs_steps = t
            obs_draws += F if pair else k * F
            obs_fpeak = max(obs_fpeak, F)
        v = np.remainder(front, nn, out=pool.get("v", F, np.int64))
        base = np.subtract(front, v, out=pool.get("base", F, np.int64))
        degs = deg_f.take(v, out=pool.get("deg", F, ftype))
        if pair:
            u = rng.random(out=pool.get("u", F, ftype), dtype=ftype)
            u *= degs
            first = np.floor(u, out=pool.get("first", F, ftype))
            u -= first  # leftover fraction: uniform again
            u *= degs
            i1 = pool.get("i1", F, np.int64)
            np.copyto(i1, first, casting="unsafe")  # trunc == floor (>= 0)
            i2 = pool.get("i2", F, np.int64)
            np.copyto(i2, u, casting="unsafe")
            p1 = oracle.neighbor_at(v, i1)
            p1 += base
            p2 = oracle.neighbor_at(v, i2)
            p2 += base
            scratch[p1] = True
            scratch[p2] = True
        else:
            u = rng.random((k, F), dtype=ftype)
            nbrs = oracle.neighbor_at(v[None, :], (u * degs).astype(np.int64))
            scratch[(base + nbrs).ravel()] = True
        front = scratch.nonzero()[0]
        if reset_by_scatter:
            scratch[front] = False
        else:
            scratch = np.zeros(a * n, dtype=bool)
        # fused test+set: front is sorted unique (it's a nonzero()),
        # and re-setting already-set bits is a no-op
        fresh = front[covered.test_and_set_sorted(front)]
        if fresh.size:
            count += np.bincount(fresh // nn, minlength=a)
            done = count == n
            if done.any():
                out[alive[done]] = t
                keep = ~done
                alive = alive[keep]
                a = alive.size
                if a == 0:
                    break
                count = count[keep]
                rows = front // nn
                keep_front = keep[rows]
                remap = np.cumsum(keep) - 1
                front = remap[rows[keep_front]] * n + front[keep_front] % nn
                covered.keep_rows(keep)
                scratch = np.zeros(a * n, dtype=bool)
                reset_by_scatter = a * n > (1 << 21)
    if trace_on:
        tracer.count("engine_steps", obs_steps)
        tracer.count("rng_draws", obs_draws)
        tracer.gauge("frontier_peak", obs_fpeak)
    return out


def batched_cobra_hit_trials(
    graph: GraphLike,
    target: int,
    *,
    trials: int,
    k: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """First-activation times of *target* over *trials* independent
    k-cobra runs advanced in lock-step (the ``metric="hit"`` engine).

    Unlike the cover engine no per-vertex visit ledger is kept: a
    trial is done the step its frontier mask lights up ``target``, so
    the hot loop is just the neighbor draw plus the coalescing scatter.

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    target : int
        Vertex whose first activation stops a trial.
    trials : int
        Number of independent runs.
    k : int
        Cobra branching factor.
    start : int or numpy.ndarray
        Start vertex or array of start vertices (multi-source).
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    max_steps : int, optional
        Step budget per trial; defaults to the cobra helper's budget.

    Returns
    -------
    numpy.ndarray
        ``float64[trials]`` hitting times with ``np.nan`` marking
        budget exhaustion — the same contract as
        :func:`repro.core.hitting.cobra_hitting_trials`.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if k < 1:
        raise ValueError(f"branching factor k must be >= 1, got {k}")
    n = oracle.n
    if not (0 <= target < n):
        raise ValueError("target out of range")
    start_arr = _validated_start(oracle, start)
    if max_steps is None:
        from ..core.cobra import _default_budget

        max_steps = _default_budget(n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    if target in start_arr:
        out[:] = 0.0
        return out

    pair, ftype = _cobra_ftype(oracle, k)
    nn = np.int64(n)
    deg_f = _degree_table(oracle, ftype)

    a = trials
    alive = np.arange(trials)
    target_flat = np.arange(a, dtype=np.int64) * n + target
    front = (
        np.repeat(np.arange(a, dtype=np.int64) * n, start_arr.size)
        + np.tile(start_arr, a)
    )
    scratch = np.zeros(a * n, dtype=bool)

    for t in range(1, max_steps + 1):
        v = front % nn
        _scatter_cobra_draws(
            oracle, v, deg_f.take(v), front - v, k, pair, ftype, rng, scratch
        )
        # hit check reads the mask BEFORE it is reset: the frontier at
        # step t is exactly the activation set of step t
        done = scratch[target_flat]
        front = scratch.nonzero()[0]
        scratch[front] = False
        if done.any():
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            rows = front // nn
            keep_front = keep[rows]
            remap = np.cumsum(keep) - 1
            front = remap[rows[keep_front]] * n + front[keep_front] % nn
            target_flat = np.arange(a, dtype=np.int64) * n + target
            scratch = np.zeros(a * n, dtype=bool)
    return out


def batched_gossip_spread_trials(
    graph: GraphLike,
    *,
    trials: int,
    start: int = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
    push: bool = True,
    pull: bool = False,
) -> np.ndarray:
    """Spread times of *trials* independent gossip runs (push and/or
    pull), advanced in lock-step; finished trials are compacted out.

    Per round and per alive trial: every informed vertex pushes the
    rumor to one uniform neighbor (``push``) and/or every uninformed
    vertex polls one uniform neighbor and learns the rumor if that
    neighbor knows it (``pull``) — the same semantics as
    :class:`repro.walks.gossip.GossipSpread`, whose serial runs these
    match distributionally.

    The hot loop draws only for vertices that can still change the
    state: a push from an informed vertex whose whole neighborhood is
    informed, or a pull by a vertex with no informed neighbor, never
    alters the informed set, so skipping those draws leaves the
    process law untouched while cutting per-round work from
    ``O(alive · n)`` to ``O(boundary)``.  The boundary bookkeeping is
    maintained incrementally from each round's freshly informed
    vertices (one oracle neighborhood expansion plus one sparse unique
    — never an ``O(alive · n)`` pass), the batched analogue of a
    wavefront sweep.

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    trials : int
        Number of independent runs.
    start : int
        The initially informed vertex.
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    max_steps : int, optional
        Round budget per trial; defaults to the gossip helpers'
        ``O(n log n)``-with-slack budget.
    push : bool
        Informed vertices push to one uniform neighbor per round.
    pull : bool
        Uninformed vertices poll one uniform neighbor per round.

    Returns
    -------
    numpy.ndarray
        ``float64[trials]`` round counts with ``np.nan`` marking
        budget exhaustion.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if not (push or pull):
        raise ValueError("enable at least one of push/pull")
    n = oracle.n
    start = int(start)
    if not (0 <= start < n):
        raise ValueError("start out of range")
    if max_steps is None:
        from ..walks.gossip import _budget

        max_steps = _budget(n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    if n == 1:
        out[:] = 0.0
        return out

    a = trials
    alive = np.arange(trials)
    nn = np.int64(n)
    deg_i = oracle.degree(np.arange(n, dtype=np.int64))
    deg_f = deg_i.astype(np.float64)
    informed = visited_mask(a, n)
    start_flat = np.arange(a, dtype=np.int64) * n + start
    informed.set_unique_rows(start_flat)
    count = np.ones(a, dtype=np.int64)

    def _neighbor_expand(fresh: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Unique flat neighbor ids of *fresh* (newly informed flat
        ids) and how often each is hit: one oracle expansion + one
        sparse unique — every op is sized by the touched edges, never
        a·n."""
        w = fresh % nn
        nbrs_local, deg = oracle.all_neighbors(w)
        return np.unique(np.repeat(fresh - w, deg) + nbrs_local, return_counts=True)

    # boundary tracking: a push from a vertex whose whole neighborhood
    # is informed, or a pull by one with no informed neighbor, can
    # never change the state, so only boundary vertices ever draw
    uids0, ucnt0 = _neighbor_expand(start_flat)
    uncount = None
    if push:
        # uninformed-neighbor count per flat id (push prune: == 0 means
        # saturated, and saturation is monotone)
        uncount = np.tile(deg_i, a)
        uncount[uids0] -= ucnt0
    everseen = None
    if pull:
        # flat ids that have ever had an informed neighbor (pull grow:
        # a vertex joins the asker pool on its first such event)
        everseen = visited_mask(a, n)
        everseen.set_sorted_flat(uids0)
    # push side: informed flat ids still bordering uninformed vertices
    senders = start_flat
    # pull side: uninformed flat ids with >= 1 informed neighbor
    askers = uids0[~informed.test_flat(uids0)] if pull else None

    for t in range(1, max_steps + 1):
        new_parts = []
        if push:
            senders = senders[uncount[senders] > 0]
            w = senders % nn
            u = rng.random(senders.size)
            cand = (senders - w) + oracle.neighbor_at(
                w, (u * deg_f[w]).astype(np.int64)
            )
            new_parts.append(cand[~informed.test_flat(cand)])
        if pull:
            askers = askers[~informed.test_flat(askers)]
            if askers.size:
                w = askers % nn
                u = rng.random(askers.size)
                src = (askers - w) + oracle.neighbor_at(
                    w, (u * deg_f[w]).astype(np.int64)
                )
                new_parts.append(askers[informed.test_flat(src)])
        new = (
            new_parts[0]
            if len(new_parts) == 1
            else np.concatenate(new_parts)
            if new_parts
            else np.empty(0, dtype=np.int64)
        )
        if new.size == 0:
            continue
        fresh = np.unique(new)
        informed.set_sorted_flat(fresh)
        count += np.bincount(fresh // nn, minlength=a)
        uids, ucnt = _neighbor_expand(fresh)
        if push:
            uncount[uids] -= ucnt
            senders = np.concatenate([senders, fresh])
        if pull:
            newly = uids[~everseen.test_flat(uids)]
            everseen.set_sorted_flat(uids)
            askers = np.concatenate([askers, newly[~informed.test_flat(newly)]])
        done = count == n
        if done.any():
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            count = count[keep]
            remap = np.cumsum(keep) - 1
            informed.keep_rows(keep)
            if push:
                uncount = np.ascontiguousarray(uncount.reshape(-1, n)[keep]).reshape(-1)
                rows = senders // nn
                m = keep[rows]
                senders = remap[rows[m]] * nn + senders[m] % nn
            if pull:
                everseen.keep_rows(keep)
                rows = askers // nn
                m = keep[rows]
                askers = remap[rows[m]] * nn + askers[m] % nn
    return out


def batched_gossip_hit_trials(
    graph: GraphLike,
    target: int,
    *,
    trials: int,
    start: int = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
    push: bool = True,
    pull: bool = False,
) -> np.ndarray:
    """First rounds at which *target* learns the rumor, over *trials*
    independent gossip runs advanced in lock-step (the
    ``metric="hit"`` engine for push/pull/push_pull).

    Identical round semantics to
    :func:`batched_gossip_spread_trials` — same boundary-tracked
    push/pull draws, same compaction — but a trial finishes the round
    *target* first becomes informed instead of the round the rumor
    saturates, matching ``GossipSpread.first_visit[target]`` of the
    serial process distributionally.  No per-trial informed *count* is
    kept: the only completion test is target membership in each
    round's freshly informed set.

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    target : int
        Vertex whose first informing stops a trial.
    trials : int
        Number of independent runs.
    start : int
        The initially informed vertex.
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    max_steps : int, optional
        Round budget per trial; defaults to the gossip helpers'
        ``O(n log n)``-with-slack budget.
    push : bool
        Informed vertices push to one uniform neighbor per round.
    pull : bool
        Uninformed vertices poll one uniform neighbor per round.

    Returns
    -------
    numpy.ndarray
        ``float64[trials]`` hitting rounds with ``np.nan`` marking
        budget exhaustion (``0.0`` when *target* is the start vertex).
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if not (push or pull):
        raise ValueError("enable at least one of push/pull")
    n = oracle.n
    start = int(start)
    if not (0 <= start < n):
        raise ValueError("start out of range")
    if not (0 <= target < n):
        raise ValueError("target out of range")
    if max_steps is None:
        from ..walks.gossip import _budget

        max_steps = _budget(n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    if target == start:
        out[:] = 0.0
        return out

    a = trials
    alive = np.arange(trials)
    nn = np.int64(n)
    deg_i = oracle.degree(np.arange(n, dtype=np.int64))
    deg_f = deg_i.astype(np.float64)
    informed = visited_mask(a, n)
    start_flat = np.arange(a, dtype=np.int64) * n + start
    informed.set_unique_rows(start_flat)

    def _neighbor_expand(fresh: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        w = fresh % nn
        nbrs_local, deg = oracle.all_neighbors(w)
        return np.unique(np.repeat(fresh - w, deg) + nbrs_local, return_counts=True)

    # the same boundary structures as the spread engine (see there)
    uids0, ucnt0 = _neighbor_expand(start_flat)
    uncount = None
    if push:
        uncount = np.tile(deg_i, a)
        uncount[uids0] -= ucnt0
    everseen = None
    if pull:
        everseen = visited_mask(a, n)
        everseen.set_sorted_flat(uids0)
    senders = start_flat
    askers = uids0[~informed.test_flat(uids0)] if pull else None

    for t in range(1, max_steps + 1):
        new_parts = []
        if push:
            senders = senders[uncount[senders] > 0]
            w = senders % nn
            u = rng.random(senders.size)
            cand = (senders - w) + oracle.neighbor_at(
                w, (u * deg_f[w]).astype(np.int64)
            )
            new_parts.append(cand[~informed.test_flat(cand)])
        if pull:
            askers = askers[~informed.test_flat(askers)]
            if askers.size:
                w = askers % nn
                u = rng.random(askers.size)
                src = (askers - w) + oracle.neighbor_at(
                    w, (u * deg_f[w]).astype(np.int64)
                )
                new_parts.append(askers[informed.test_flat(src)])
        new = (
            new_parts[0]
            if len(new_parts) == 1
            else np.concatenate(new_parts)
            if new_parts
            else np.empty(0, dtype=np.int64)
        )
        if new.size == 0:
            continue
        fresh = np.unique(new)
        informed.set_sorted_flat(fresh)
        uids, ucnt = _neighbor_expand(fresh)
        if push:
            uncount[uids] -= ucnt
            senders = np.concatenate([senders, fresh])
        if pull:
            newly = uids[~everseen.test_flat(uids)]
            everseen.set_sorted_flat(uids)
            askers = np.concatenate([askers, newly[~informed.test_flat(newly)]])
        # completion: which rows informed the target this round (the
        # fresh set is unique, so each hit row appears exactly once)
        hit_rows = fresh[fresh % nn == target] // nn
        if hit_rows.size:
            done = np.zeros(a, dtype=bool)
            done[hit_rows] = True
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            remap = np.cumsum(keep) - 1
            informed.keep_rows(keep)
            if push:
                uncount = np.ascontiguousarray(uncount.reshape(-1, n)[keep]).reshape(-1)
                rows = senders // nn
                m = keep[rows]
                senders = remap[rows[m]] * nn + senders[m] % nn
            if pull:
                everseen.keep_rows(keep)
                rows = askers // nn
                m = keep[rows]
                askers = remap[rows[m]] * nn + askers[m] % nn
    return out


def batched_parallel_walks_cover_trials(
    graph: GraphLike,
    *,
    trials: int,
    walkers: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Cover times of *trials* independent ``walkers``-walk runs,
    advanced by one batched neighbor draw per step over all
    ``trials * walkers`` positions.

    The state is tiny (one position per walker), so finished trials
    keep stepping rather than being compacted — the same trade
    ``rw_cover_trials`` makes.

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    trials : int
        Number of independent runs.
    walkers : int or None
        Independent walkers per trial.
    start : int or numpy.ndarray
        One vertex (all walkers there) or an array of length
        *walkers*, matching :class:`repro.walks.parallel.ParallelWalks`.
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    max_steps : int, optional
        Step budget per trial; defaults to the parallel-walk helper's
        ``n³/walkers``-with-slack budget.

    Returns
    -------
    numpy.ndarray
        ``float64[trials]`` cover times with ``np.nan`` marking budget
        exhaustion.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if walkers < 1:
        raise ValueError("need at least one walker")
    n = oracle.n
    start_pos = np.atleast_1d(np.asarray(start, dtype=np.int64))
    if start_pos.size == 1:
        start_pos = np.full(walkers, start_pos[0], dtype=np.int64)
    if start_pos.size != walkers:
        raise ValueError("start must be scalar or length == walkers")
    if start_pos.min() < 0 or start_pos.max() >= n:
        raise ValueError("start out of range")
    if max_steps is None:
        from ..walks.parallel import _default_budget

        max_steps = _default_budget(n, walkers)
    rng = resolve_rng(seed)

    pos = np.tile(start_pos, trials)
    trial_base = np.repeat(np.arange(trials, dtype=np.int64) * n, walkers)
    nn = np.int64(n)
    covered = visited_mask(trials, n)
    covered.set_sorted_flat(np.unique(trial_base + pos))
    count = np.full(trials, np.unique(start_pos).size, dtype=np.int64)
    out = np.full(trials, np.nan)
    done = count == n
    out[done] = 0.0
    if done.all():
        return out

    for t in range(1, max_steps + 1):
        pos = oracle.sample_one(pos, rng)
        flat = trial_base + pos
        fresh = np.unique(flat[~covered.test_flat(flat)])
        if fresh.size:
            covered.set_sorted_flat(fresh)
            count += np.bincount(fresh // nn, minlength=trials)
            newly = ~done & (count == n)
            if newly.any():
                out[newly] = t
                done |= newly
                if done.all():
                    break
    return out


def _walt_move_batch(
    oracle: NeighborOracle,
    positions: np.ndarray,
    move_rows: np.ndarray,
    rng: np.random.Generator,
    tmp: np.ndarray,
    tmp2: np.ndarray,
    d1: np.ndarray,
    d2: np.ndarray,
) -> np.ndarray:
    """One non-lazy Walt move applied to the ``move_rows`` trials of the
    ``(a, p)`` pebble-position array; returns the moved ``(m, p)`` block.

    Grouping is sort-free: per-group representatives come from two
    duplicate-scatter passes into the dense per-``(trial, vertex)``
    tables ``tmp``/``tmp2`` (numpy scatter semantics: for repeated
    indices the last write wins, so ``tmp[key] == own_index`` singles
    out exactly one pebble per occupied vertex).  The serial kernel
    (:func:`repro.core.walt.walt_step_positions`) instead lexsorts by
    ``(vertex, rank)`` per trial, at ``O(p log p)`` per trial per step;
    here the whole batch pays only ``O(m·p)`` gathers and scatters.

    Which two pebbles of a group act as the independent movers differs
    from the serial rule ("the two lowest-order"), but pebble identities
    are exchangeable for the position-*multiset* law — the update
    removes the group, places one pebble at each of two independent
    uniform neighbors, and coin-flips the rest between them, regardless
    of which identities carried the draws — so cover times are
    distributionally identical.

    The dense tables carry stale values between calls by design: every
    read is at a key written earlier in the same call, so no O(a·n)
    reset is ever needed.
    """
    n = oracle.n
    sub = positions[move_rows]
    m, p = sub.shape
    mp = m * p
    flat_pos = sub.ravel()
    key = np.repeat(move_rows.astype(np.int64) * n, p) + flat_pos
    idx = np.arange(mp, dtype=np.int64)
    tmp[key] = idx
    leader = tmp[key] == idx
    newpos = np.empty(mp, dtype=np.int64)
    lkey = key[leader]
    newpos[leader] = oracle.sample_one(flat_pos[leader], rng)
    d1[lkey] = newpos[leader]
    nl = np.flatnonzero(~leader)
    if nl.size:
        tmp2[key[nl]] = nl
        vice = nl[tmp2[key[nl]] == nl]
        vkey = key[vice]
        newpos[vice] = oracle.sample_one(flat_pos[vice], rng)
        d2[vkey] = newpos[vice]
        is_rep = leader.copy()
        is_rep[vice] = True
        followers = np.flatnonzero(~is_rep)
        if followers.size:
            coin = rng.random(followers.size) < 0.5
            fkey = key[followers]
            newpos[followers] = np.where(coin, d1[fkey], d2[fkey])
    return newpos.reshape(m, p)


def batched_walt_cover_trials(
    graph: GraphLike,
    *,
    trials: int,
    delta: float = 0.5,
    lazy: bool = True,
    start: int | np.ndarray | None = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Cover times of *trials* independent Walt runs (``δn`` ordered
    pebbles each), advanced in lock-step; finished trials are compacted
    out.

    Pebble placement matches :func:`repro.core.walt.walt_start_positions`:
    integer/array *start* puts all pebbles there (identical across
    trials); ``start=None`` spreads them uniformly at random,
    independently per trial.  The lazy coin is drawn per trial per step,
    so each trial holds independently — distributionally the same as
    the serial process's one global coin.

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    trials : int
        Number of independent runs.
    delta : float
        Pebble density: ``max(1, int(delta·n))`` pebbles per trial.
    lazy : bool
        Apply the per-step 1/2 holding coin (paper default).
    start : int or numpy.ndarray or None
        Placement vertex/array (``None`` = uniform per trial).
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    max_steps : int, optional
        Step budget per trial; defaults to the Walt helper's
        ``max(20_000, 1000·n)``.

    Returns
    -------
    numpy.ndarray
        ``float64[trials]`` cover times with ``np.nan`` marking budget
        exhaustion.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if not 0 < delta <= 1:
        raise ValueError("delta must be in (0, 1]")
    n = oracle.n
    p = max(1, int(delta * n))
    if max_steps is None:
        # the serial helper's default budget (walt_cover_time)
        max_steps = max(20_000, 1000 * n)
    rng = resolve_rng(seed)

    positions = _walt_initial_positions(oracle, trials, p, start, rng)

    a = trials
    alive = np.arange(trials)
    nn = np.int64(n)
    covered = visited_mask(a, n)
    init_flat = np.unique(
        (np.arange(a, dtype=np.int64) * n)[:, None] + positions
    ).ravel()
    covered.set_sorted_flat(init_flat)
    count = np.bincount(init_flat // nn, minlength=a).astype(np.int64)
    out = np.full(trials, np.nan)
    done0 = count == n
    if done0.any():
        out[done0] = 0.0
        keep = ~done0
        alive = alive[keep]
        a = alive.size
        if a == 0:
            return out
        positions = positions[keep]
        count = count[keep]
        covered.keep_rows(keep)

    # dense per-(trial, vertex) work tables for the sort-free move; no
    # per-step reset needed (see _walt_move_batch)
    tmp = np.empty(a * n, dtype=np.int64)
    tmp2 = np.empty(a * n, dtype=np.int64)
    d1 = np.empty(a * n, dtype=np.int64)
    d2 = np.empty(a * n, dtype=np.int64)

    for t in range(1, max_steps + 1):
        if lazy:
            move_rows = (rng.random(a) >= 0.5).nonzero()[0]
            if move_rows.size == 0:
                continue
        else:
            move_rows = np.arange(a)
        moved = _walt_move_batch(oracle, positions, move_rows, rng, tmp, tmp2, d1, d2)
        positions[move_rows] = moved
        flat = ((move_rows * nn)[:, None] + moved).ravel()
        unseen = ~covered.test_flat(flat)
        if not unseen.any():
            continue
        fresh = np.unique(flat[unseen])
        covered.set_sorted_flat(fresh)
        count += np.bincount(fresh // nn, minlength=a)
        done = count == n
        if done.any():
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            positions = positions[keep]
            count = count[keep]
            covered.keep_rows(keep)
            tmp = np.empty(a * n, dtype=np.int64)
            tmp2 = np.empty(a * n, dtype=np.int64)
            d1 = np.empty(a * n, dtype=np.int64)
            d2 = np.empty(a * n, dtype=np.int64)
    return out


def batched_walt_hit_trials(
    graph: GraphLike,
    target: int,
    *,
    trials: int,
    delta: float = 0.5,
    lazy: bool = True,
    start: int | np.ndarray | None = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """First-arrival times of any pebble at *target* over *trials*
    independent Walt runs (the Walt ``metric="hit"`` engine).

    The cobra hit-engine template ported to Walt: no per-vertex visit
    ledger is kept — a trial is done the round one of its pebbles
    lands on ``target``, so the hot loop is exactly the cover engine's
    grouped move (:func:`_walt_move_batch`) plus one equality scan of
    the moved block.  Placement and the per-trial lazy coin match
    :func:`batched_walt_cover_trials`.

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    target : int
        Vertex whose first pebble arrival stops a trial.
    trials : int
        Number of independent runs.
    delta : float
        Pebble density: ``max(1, int(delta·n))`` pebbles per trial.
    lazy : bool
        Apply the per-round 1/2 holding coin (paper default).
    start : int or numpy.ndarray or None
        Placement vertex/array (``None`` = uniform per trial).
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    max_steps : int, optional
        Round budget per trial; defaults to the Walt helper's
        ``max(20_000, 1000·n)``.

    Returns
    -------
    numpy.ndarray
        ``float64[trials]`` hitting times with ``np.nan`` marking
        budget exhaustion.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if not 0 < delta <= 1:
        raise ValueError("delta must be in (0, 1]")
    n = oracle.n
    if not (0 <= target < n):
        raise ValueError("target out of range")
    p = max(1, int(delta * n))
    if max_steps is None:
        max_steps = max(20_000, 1000 * n)
    rng = resolve_rng(seed)

    positions = _walt_initial_positions(oracle, trials, p, start, rng)

    out = np.full(trials, np.nan)
    a = trials
    alive = np.arange(trials)
    hit0 = (positions == target).any(axis=1)
    if hit0.any():
        out[hit0] = 0.0
        keep = ~hit0
        alive = alive[keep]
        a = alive.size
        if a == 0:
            return out
        positions = positions[keep]

    tmp = np.empty(a * n, dtype=np.int64)
    tmp2 = np.empty(a * n, dtype=np.int64)
    d1 = np.empty(a * n, dtype=np.int64)
    d2 = np.empty(a * n, dtype=np.int64)

    for t in range(1, max_steps + 1):
        if lazy:
            move_rows = (rng.random(a) >= 0.5).nonzero()[0]
            if move_rows.size == 0:
                continue
        else:
            move_rows = np.arange(a)
        moved = _walt_move_batch(oracle, positions, move_rows, rng, tmp, tmp2, d1, d2)
        positions[move_rows] = moved
        hit_rows = move_rows[(moved == target).any(axis=1)]
        if hit_rows.size:
            done = np.zeros(a, dtype=bool)
            done[hit_rows] = True
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            positions = positions[keep]
            tmp = np.empty(a * n, dtype=np.int64)
            tmp2 = np.empty(a * n, dtype=np.int64)
            d1 = np.empty(a * n, dtype=np.int64)
            d2 = np.empty(a * n, dtype=np.int64)
    return out


def _walt_initial_positions(
    oracle: NeighborOracle, trials: int, p: int, start, rng: np.random.Generator
) -> np.ndarray:
    """``(trials, p)`` initial pebble placement matching
    :func:`repro.core.walt.walt_start_positions`: ``start=None`` draws
    uniform positions independently per trial, anything else tiles the
    given vertex/array across all pebbles of every trial."""
    n = oracle.n
    if start is None:
        return rng.integers(0, n, size=(trials, p))
    start_arr = np.atleast_1d(np.asarray(start, dtype=np.int64))
    if start_arr.size == 0:
        raise ValueError("need at least one start vertex")
    if start_arr.min() < 0 or start_arr.max() >= n:
        raise ValueError("start vertex out of range")
    return np.tile(np.resize(start_arr, p), (trials, 1))


def batched_lazy_cover_trials(
    graph: GraphLike,
    *,
    trials: int,
    start: int = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Cover times of *trials* independent lazy-random-walk runs.

    The hold-probability variant of the simple-walk engine
    (:func:`repro.walks.simple.rw_cover_trials`), built on the
    jump-chain decomposition rather than a simulated coin per step: a
    lazy walk is the simple walk run in slow motion, each move
    preceded by ``Geometric(1/2)`` holds, so the engine runs the
    *move* chain on the batched simple-walk engine (half the steps,
    none of the per-step coin traffic) and then adds the total holding
    time — the sum of ``N`` independent geometrics, i.e. one
    ``NegativeBinomial(N, 1/2)`` draw per trial — to the per-trial
    move count ``N``.  The resulting cover-time law is exactly that of
    :class:`repro.walks.simple.RandomWalk` with ``lazy=True``
    (coverage can only change at a move, and each step is an
    independent fair coin), including budget censoring: a trial is
    ``nan`` iff its reconstructed step total exceeds *max_steps*.

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    trials : int
        Number of independent runs.
    start : int
        Common start vertex of every trial.
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    max_steps : int, optional
        Step budget per trial (holds included, as in the serial walk);
        defaults to the lazy walk's serial budget (Feige's worst-case
        ``n³`` with slack).

    Returns
    -------
    numpy.ndarray
        ``float64[trials]`` cover times, ``np.nan`` marking budget
        exhaustion.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    from ..walks.simple import _cover_budget, rw_cover_trials

    n = oracle.n
    start = int(start)
    if not (0 <= start < n):
        raise ValueError("start out of range")
    if max_steps is None:
        max_steps = _cover_budget(n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    if n == 1:
        out[:] = 0.0
        return out

    # total steps >= moves, so `max_steps` moves bounds every trial
    # that could still finish within the step budget
    moves = rw_cover_trials(
        graph, start=start, trials=trials, seed=rng, max_steps=max_steps
    )
    fin = np.flatnonzero(~np.isnan(moves))
    if fin.size:
        n_moves = moves[fin].astype(np.int64)
        total = n_moves + rng.negative_binomial(np.maximum(n_moves, 1), 0.5)
        total = np.where(n_moves > 0, total, 0)
        ok = total <= max_steps
        out[fin[ok]] = total[ok]
    return out


def batched_branching_cover_trials(
    graph: GraphLike,
    *,
    trials: int,
    k: int = 2,
    start: int = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
    population_cap: int = 1_000_000,
) -> np.ndarray:
    """Cover times of *trials* independent k-branching-walk runs,
    advanced in lock-step; finished trials are compacted out.

    State is one flat ``int64[trials * n]`` particle-count array, so
    the ragged per-trial frontier is simply ``np.flatnonzero(counts)``
    — a sorted flat array whose runs of equal ``id // n`` are the
    per-trial occupied sets (offsets/counts recoverable by
    ``searchsorted``/``bincount``, never materialised in the hot
    loop).  The ``k·c`` children of the ``c`` particles at a vertex
    distribute multinomially over its neighbors, exactly as in the
    serial kernel (:meth:`repro.walks.branching.BranchingWalk.step`),
    but the multinomial is drawn by *binomial peeling over neighbor
    slots*: slot ``j`` of every occupied vertex with ``deg > j`` takes
    ``Binomial(remaining, 1/(deg-j))`` children in one vectorized draw,
    so a step costs ``O(max_degree)`` batched calls instead of one
    Python-level multinomial per occupied vertex per trial.  (On
    unbounded-degree graphs — the star — the slot loop degenerates to
    ``O(n)`` vectorized calls; the engine is built for the
    bounded-degree graphs the branching literature studies.)

    When a trial's population exceeds *population_cap* its counts are
    renormalised down proportionally with occupied vertices clamped to
    ≥ 1 particle, matching the serial cap semantics (coverage
    statistics remain valid).

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    trials : int
        Number of independent runs.
    k : int
        Branching factor (children per particle per step).
    start : int
        Common start vertex of every trial (one initial particle).
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    max_steps : int, optional
        Step budget per trial; defaults to the serial helper's
        ``max(10_000, 50·n)``.
    population_cap : int
        Per-trial particle ceiling before renormalisation.

    Returns
    -------
    numpy.ndarray
        ``float64[trials]`` cover times, ``np.nan`` marking budget
        exhaustion.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if k < 1:
        raise ValueError(f"branching factor k must be >= 1, got {k}")
    if population_cap < 1:
        raise ValueError("population_cap must be >= 1")
    n = oracle.n
    start = int(start)
    if not (0 <= start < n):
        raise ValueError("start out of range")
    if max_steps is None:
        max_steps = max(10_000, 50 * n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    if n == 1:
        out[:] = 0.0
        return out

    nn = np.int64(n)
    a = trials
    alive = np.arange(trials)
    base = np.arange(a, dtype=np.int64) * n
    counts = np.zeros(a * n, dtype=np.int64)
    counts[base + start] = 1
    covered = visited_mask(a, n)
    covered.set_unique_rows(base + start)
    cov_count = np.ones(a, dtype=np.int64)

    for t in range(1, max_steps + 1):
        occ = np.flatnonzero(counts)  # ragged per-trial frontier, flat+sorted
        v = occ % nn
        deg = oracle.degree(v)
        vbase = occ - v
        remaining = counts[occ] * k
        tgt_parts: list[np.ndarray] = []
        cnt_parts: list[np.ndarray] = []
        for j in range(int(deg.max())):
            sel = np.flatnonzero(deg > j)
            if sel.size == 0:
                break
            rem = remaining[sel]
            deg_sel = deg[sel]
            last = deg_sel == j + 1
            x = np.empty(sel.size, dtype=np.int64)
            split = ~last
            if split.any():
                x[split] = rng.binomial(rem[split], 1.0 / (deg_sel[split] - j))
            x[last] = rem[last]
            remaining[sel] -= x
            nz = np.flatnonzero(x)
            if nz.size:
                pick = sel[nz]
                tgt_parts.append(vbase[pick] + oracle.neighbor_at(v[pick], j))
                cnt_parts.append(x[nz])
        # int sums through float64 weights are exact far beyond any cap
        counts = np.bincount(
            np.concatenate(tgt_parts),
            weights=np.concatenate(cnt_parts),
            minlength=a * n,
        ).astype(np.int64)
        occ2 = np.flatnonzero(counts)
        row = occ2 // nn
        pop = np.bincount(row, weights=counts[occ2].astype(np.float64), minlength=a)
        over = pop > population_cap
        if over.any():
            sel = np.flatnonzero(over[row])
            ids = occ2[sel]
            scale = population_cap / pop[row[sel]]
            counts[ids] = np.maximum((counts[ids] * scale).astype(np.int64), 1)
        unseen = ~covered.test_flat(occ2)
        if not unseen.any():
            continue
        fresh = occ2[unseen]
        covered.set_sorted_flat(fresh)
        cov_count += np.bincount(fresh // nn, minlength=a)
        done = cov_count == n
        if done.any():
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            cov_count = cov_count[keep]
            counts = np.ascontiguousarray(counts.reshape(-1, n)[keep]).reshape(-1)
            covered.keep_rows(keep)
    return out


def batched_coalescing_cover_trials(
    graph: GraphLike,
    *,
    trials: int,
    walkers: int | None = None,
    start: int | np.ndarray | None = None,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Cover times of *trials* independent coalescing-walk runs,
    advanced in lock-step; finished trials are compacted out.

    The walker sets shrink as walkers merge, so the state is one flat
    *sorted* array of ``trial*n + vertex`` walker ids (the ragged
    per-trial sets are its runs of equal ``id // n``).  Per step every
    surviving walker of every trial joins one batched neighbor draw,
    and the in-step merge is a single duplicate-scatter
    (``np.unique`` on the flat key): co-located walkers of the same
    trial collapse to one id, while walkers of different trials can
    never collide because their ids live ``n`` apart — the same
    distributional law as :class:`repro.walks.coalescing.CoalescingWalks`.

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    trials : int
        Number of independent runs.
    walkers : int or None
        Walker count for the default placement: distinct uniform
        vertices drawn independently per trial; ``None`` (or
        ``>= n``) starts one walker on every vertex, the classical
        setting — which covers at ``t = 0``.
    start : numpy.ndarray or None
        Explicit walker positions (array, shared by all trials) —
        mirrors the ``"coalescing"`` factory: ``None`` or the facade
        default ``0`` defer to *walkers*; any other scalar raises.
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    max_steps : int, optional
        Step budget per trial; defaults to the serial helper's
        ``max(100_000, 20·n²)``.

    Returns
    -------
    numpy.ndarray
        ``float64[trials]`` cover times, ``np.nan`` marking budget
        exhaustion.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    n = oracle.n
    if max_steps is None:
        max_steps = max(100_000, 20 * n * n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    a = trials
    alive = np.arange(trials)
    base = np.arange(a, dtype=np.int64) * n

    if start is not None and np.ndim(start) > 0:
        pos0 = np.unique(np.asarray(start, dtype=np.int64))
        if pos0.size == 0:
            raise ValueError("need at least one walker")
        if pos0.min() < 0 or pos0.max() >= n:
            raise ValueError("walker position out of range")
        wpos = np.repeat(base, pos0.size) + np.tile(pos0, a)
    else:
        if start not in (None, 0):
            raise ValueError(
                "the coalescing process takes an array of walker positions "
                "as start (or the walkers= count); a scalar start has no "
                "meaning for a multi-walker coalescing system"
            )
        if walkers is None or walkers >= n:
            # one walker per vertex: everything is covered at t = 0
            out[:] = 0.0
            return out
        if walkers < 1:
            raise ValueError("need at least one walker")
        # per-trial distinct uniform placement: the `walkers` smallest
        # of n iid uniforms index a uniform random subset
        r = rng.random((a, n))
        sel = np.argpartition(r, walkers - 1, axis=1)[:, :walkers]
        wpos = np.sort((base[:, None] + sel).ravel())

    nn = np.int64(n)
    covered = visited_mask(a, n)
    covered.set_sorted_flat(wpos)
    cov_count = np.bincount(wpos // nn, minlength=a).astype(np.int64)

    def _compact(wpos, covered, keep):
        """Drop finished trial rows: remap surviving walker ids onto
        the dense row numbering and compact the covered mask."""
        rows = wpos // nn
        keepw = keep[rows]
        remap = np.cumsum(keep) - 1
        wpos = remap[rows[keepw]] * nn + wpos[keepw] % nn
        covered.keep_rows(keep)
        return wpos

    done0 = cov_count == n
    if done0.any():
        out[alive[done0]] = 0.0
        keep = ~done0
        alive = alive[keep]
        a = alive.size
        if a == 0:
            return out
        cov_count = cov_count[keep]
        wpos = _compact(wpos, covered, keep)

    for t in range(1, max_steps + 1):
        v = wpos % nn
        tb = wpos - v
        moved = oracle.sample_one(v, rng) + tb
        wpos = np.unique(moved)  # in-step merge, trial-local by key design
        unseen = ~covered.test_flat(wpos)
        if not unseen.any():
            continue
        fresh = wpos[unseen]
        covered.set_sorted_flat(fresh)
        cov_count += np.bincount(fresh // nn, minlength=a)
        done = cov_count == n
        if done.any():
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            cov_count = cov_count[keep]
            wpos = _compact(wpos, covered, keep)
    return out


def batched_cobra_active_sizes(
    graph: GraphLike,
    *,
    trials: int,
    steps: int,
    k: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
) -> np.ndarray:
    """Active-set-size trajectories ``|S_t|`` of *trials* independent
    k-cobra runs over a fixed horizon (no stopping rule).

    The fixed-horizon companion of :func:`batched_cobra_cover_trials`
    for experiments that consume the frontier dynamics themselves
    (``ACTIVE_growth``'s §1.1 growth/saturation measurements) rather
    than a stopping time: all trials advance in one flat frontier and
    each step records every trial's frontier size with one
    ``bincount``.

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    trials : int
        Number of independent runs.
    steps : int
        Horizon: every trial advances exactly this many steps.
    k : int
        Cobra branching factor.
    start : int or numpy.ndarray
        Start vertex (or array of start vertices) shared by all trials.
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.

    Returns
    -------
    numpy.ndarray
        ``int64[trials, steps + 1]``; column ``t`` is ``|S_t|``, with
        column 0 the start-set size — the batched analogue of
        :attr:`repro.core.cobra.CobraWalk.history`.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if k < 1:
        raise ValueError(f"branching factor k must be >= 1, got {k}")
    if steps < 0:
        raise ValueError("steps must be >= 0")
    n = oracle.n
    start_arr = _validated_start(oracle, start)
    rng = resolve_rng(seed)

    a = trials
    pair, ftype = _cobra_ftype(oracle, k)
    nn = np.int64(n)
    deg_f = _degree_table(oracle, ftype)
    front = (
        np.repeat(np.arange(a, dtype=np.int64) * n, start_arr.size)
        + np.tile(start_arr, a)
    )
    sizes = np.zeros((trials, steps + 1), dtype=np.int64)
    sizes[:, 0] = start_arr.size
    scratch = np.zeros(a * n, dtype=bool)

    for t in range(1, steps + 1):
        v = front % nn
        _scatter_cobra_draws(
            oracle, v, deg_f.take(v), front - v, k, pair, ftype, rng, scratch
        )
        front = scratch.nonzero()[0]
        scratch[front] = False
        sizes[:, t] = np.bincount(front // nn, minlength=a)
    return sizes


def batched_walt_positions_at(
    graph: GraphLike,
    *,
    trials: int,
    steps: int,
    delta: float = 0.5,
    lazy: bool = True,
    start: int | np.ndarray | None = 0,
    seed: SeedLike = None,
    pebbles: int | None = None,
) -> np.ndarray:
    """Pebble positions of *trials* independent Walt runs after exactly
    *steps* (possibly lazy) rounds.

    The fixed-horizon companion of :func:`batched_walt_cover_trials`
    for the Theorem 8 epoch machinery (``T8_epochs``): the experiment
    needs the pebble *configuration* at the end of an epoch, not a
    cover time.  All trials advance through the same sort-free grouped
    move (:func:`_walt_move_batch`); the lazy coin is drawn per trial
    per round, so each trial holds independently.

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    trials : int
        Number of independent runs.
    steps : int
        Horizon: every trial advances exactly this many rounds.
    delta : float
        Pebble density — ``max(1, int(delta·n))`` pebbles per trial
        (ignored when *pebbles* is given).
    lazy : bool
        Apply the per-round 1/2 holding coin (paper default).
    start : int or numpy.ndarray or None
        Placement, as in :func:`batched_walt_cover_trials`: a
        vertex/array puts the pebbles there in every trial; ``None``
        spreads them uniformly at random, independently per trial.
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    pebbles : int or None
        Exact per-trial pebble count overriding *delta* (the epoch
        experiments pin ``max(2, int(δ·n))``).

    Returns
    -------
    numpy.ndarray
        ``int64[trials, p]`` pebble positions after *steps* rounds.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if steps < 0:
        raise ValueError("steps must be >= 0")
    n = oracle.n
    if pebbles is None:
        if not 0 < delta <= 1:
            raise ValueError("delta must be in (0, 1]")
        p = max(1, int(delta * n))
    else:
        p = int(pebbles)
        if p < 1:
            raise ValueError("need at least one pebble")
    rng = resolve_rng(seed)
    positions = _walt_initial_positions(oracle, trials, p, start, rng)

    a = trials
    tmp = np.empty(a * n, dtype=np.int64)
    tmp2 = np.empty(a * n, dtype=np.int64)
    d1 = np.empty(a * n, dtype=np.int64)
    d2 = np.empty(a * n, dtype=np.int64)
    for _ in range(steps):
        if lazy:
            move_rows = (rng.random(a) >= 0.5).nonzero()[0]
            if move_rows.size == 0:
                continue
        else:
            move_rows = np.arange(a)
        positions[move_rows] = _walt_move_batch(
            oracle, positions, move_rows, rng, tmp, tmp2, d1, d2
        )
    return positions


def batched_biased_cover_trials(
    graph: GraphLike,
    target: int,
    *,
    trials: int,
    start: int = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
    eps: float | None = None,
    controller: np.ndarray | None = None,
) -> np.ndarray:
    """Cover times of *trials* independent biased-walk runs.

    One row of state per trial, exactly the
    :func:`repro.walks.simple.rw_cover_trials` idiom but with the
    biased transition — at vertex ``v`` the walk follows the
    controller's neighbor with probability ``eps`` (or the
    inverse-degree bias ``1/d(v)`` when ``eps is None``) and a uniform
    neighbor otherwise.  The controller table is precomputed once (the
    toward-*target* BFS table by default), so each global step is two
    uniform draws per trial — one bias coin, one neighbor index — plus
    the coverage scatter.  Distributionally identical to serial
    :class:`repro.core.biased.BiasedWalk` runs (the serial walk skips
    the neighbor draw on controller steps; the batched engine always
    draws both, a different stream consumption of the same law).

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
        The default BFS controller needs CSR edges, so implicit
        oracles must pass *controller* explicitly.
    target : int
        The vertex the controller steers toward (the biased walk is
        defined relative to a target even when sweeping coverage).
    trials : int
        Number of independent runs.
    start : int
        Common start vertex of every trial.
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    max_steps : int, optional
        Step budget per trial; defaults to the biased walk's serial
        budget.
    eps : float, optional
        Constant controller probability; ``None`` selects the paper's
        inverse-degree bias ``1/d(v)``.
    controller : numpy.ndarray, optional
        ``int64[n]`` controller table (vertex → chosen neighbor);
        defaults to the toward-target BFS table.

    Returns
    -------
    numpy.ndarray
        ``float64[trials]`` cover times, ``np.nan`` marking budget
        exhaustion.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    n = oracle.n
    if not (0 <= target < n):
        raise ValueError("target out of range")
    if not (0 <= int(start) < n):
        raise ValueError("start out of range")
    if eps is not None and not 0.0 <= eps <= 1.0:
        raise ValueError("eps must be in [0, 1]")
    if max_steps is None:
        max_steps = 10_000_000
    if controller is None:
        if not isinstance(graph, Graph):
            raise ValueError(
                "the default controller is a BFS table over CSR edges; pass "
                "controller= explicitly when running on an implicit oracle"
            )
        from ..core.biased import toward_target_controller

        controller = toward_target_controller(graph, target)
    controller = np.asarray(controller, dtype=np.int64)
    if controller.shape != (n,):
        raise ValueError("controller table must have one entry per vertex")
    rng = resolve_rng(seed)

    deg = _degree_table(oracle, np.float64)
    nn = np.int64(n)
    row_base = np.arange(trials, dtype=np.int64) * nn
    pos = np.full(trials, int(start), dtype=np.int64)
    covered = visited_mask(trials, n)
    covered.set_unique_rows(row_base + int(start))
    count = np.ones(trials, dtype=np.int64)
    out = np.full(trials, np.nan)
    done = np.zeros(trials, dtype=bool)
    if n == 1:
        return np.zeros(trials)
    for t in range(1, max_steps + 1):
        bias = (1.0 / deg[pos]) if eps is None else eps
        coin = rng.random(trials)
        nbr = oracle.sample_one(pos, rng)
        pos = np.where(coin < bias, controller[pos], nbr)
        flat = row_base + pos
        fresh = ~covered.test_flat(flat)
        covered.set_unique_rows(flat)
        count += fresh
        newly_done = ~done & (count == n)
        if newly_done.any():
            out[newly_done] = t
            done |= newly_done
            if done.all():
                break
    return out


def batched_lazy_hit_trials(
    graph: GraphLike,
    target: int,
    *,
    trials: int,
    start: int = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Hitting times of *target* over *trials* independent
    lazy-random-walk runs (the lazy ``metric="hit"`` engine).

    The same jump-chain time-change as
    :func:`batched_lazy_cover_trials`: first activation of the target
    can only happen at a move, so the *move* chain races to the target
    on the batched simple-walk hit engine
    (:func:`repro.walks.simple.rw_hitting_trials`) and the holds are
    reconstructed afterwards as one ``NegativeBinomial(moves, 1/2)``
    draw per finished trial.  Exactly the law of the serial lazy walk,
    including budget censoring: a trial is ``nan`` iff its
    reconstructed step total exceeds *max_steps*.

    Parameters
    ----------
    graph : Graph or NeighborOracle
        Connected graph without isolated vertices (CSR or implicit).
    target : int
        Vertex whose first visit stops a trial.
    trials : int
        Number of independent runs.
    start : int
        Common start vertex of every trial.
    seed : SeedLike, optional
        Seed/stream for the single interleaved RNG.
    max_steps : int, optional
        Step budget per trial (holds included, as in the serial walk);
        defaults to the lazy walk's serial budget.

    Returns
    -------
    numpy.ndarray
        ``float64[trials]`` hitting times, ``np.nan`` marking budget
        exhaustion.
    """
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    from ..walks.simple import _cover_budget, rw_hitting_trials

    n = oracle.n
    if not (0 <= target < n):
        raise ValueError("target out of range")
    if not (0 <= int(start) < n):
        raise ValueError("start out of range")
    if max_steps is None:
        max_steps = _cover_budget(n)
    rng = resolve_rng(seed)

    # total steps >= moves, so `max_steps` moves bounds every trial
    # that could still hit within the step budget
    moves = rw_hitting_trials(
        graph, target, start=int(start), trials=trials, seed=rng, max_steps=max_steps
    )
    out = np.full(trials, np.nan)
    fin = np.flatnonzero(~np.isnan(moves))
    if fin.size:
        n_moves = moves[fin].astype(np.int64)
        total = n_moves + rng.negative_binomial(np.maximum(n_moves, 1), 0.5)
        total = np.where(n_moves > 0, total, 0)
        ok = total <= max_steps
        out[fin[ok]] = total[ok]
    return out
