"""A minimal stepping protocol shared by all processes.

Every process class in :mod:`repro` (cobra, Walt, random walks,
branching, coalescing) exposes ``step()`` and a monotone step counter
``t``; most also expose coverage counters.  :func:`run_process` drives
any of them with a stopping predicate and an optional per-step
callback — the small amount of glue experiments need without forcing
the processes into a class hierarchy.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Protocol, runtime_checkable

__all__ = ["SteppingProcess", "run_process"]


@runtime_checkable
class SteppingProcess(Protocol):
    """Structural interface of a steppable process."""

    t: int

    def step(self) -> object:  # pragma: no cover - protocol
        ...


def run_process(
    process: SteppingProcess,
    *,
    max_steps: int,
    until: Callable[[SteppingProcess], bool] | None = None,
    on_step: Callable[[SteppingProcess], None] | None = None,
) -> bool:
    """Step *process* until *until* returns true or *max_steps* pass.

    Returns whether the stopping predicate fired (always ``False`` when
    no predicate is supplied — the budget is then the only stop).
    ``on_step`` runs after every step, e.g. to record trajectories.
    """
    if max_steps < 0:
        raise ValueError("max_steps must be non-negative")
    if until is not None and until(process):
        return True
    start = process.t
    while process.t - start < max_steps:
        process.step()
        if on_step is not None:
            on_step(process)
        if until is not None and until(process):
            return True
    return False
