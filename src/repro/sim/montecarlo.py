"""Monte-Carlo trial running, serial or multiprocess.

The pattern follows the HPC guides' batch idiom: a trial function
receives a :class:`numpy.random.SeedSequence` (cheap to pickle) plus
static arguments, and returns a float.  Parent-side code never ships
generators or graphs per trial — graphs go once via the function's
closure-free arguments so fork/spawn costs stay flat.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from .rng import SeedLike, spawn_seeds

__all__ = ["TrialSummary", "run_trials", "summarize_trials"]


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics over trial outcomes (NaNs = failed trials)."""

    values: np.ndarray
    mean: float
    std: float
    median: float
    ci95_half_width: float
    failures: int

    @property
    def trials(self) -> int:
        return int(self.values.size)


def summarize_trials(values: np.ndarray) -> TrialSummary:
    """Build a :class:`TrialSummary` from raw trial values."""
    values = np.asarray(values, dtype=np.float64)
    ok = values[~np.isnan(values)]
    failures = int(values.size - ok.size)
    if ok.size == 0:
        return TrialSummary(values, np.nan, np.nan, np.nan, np.nan, failures)
    mean = float(ok.mean())
    std = float(ok.std(ddof=1)) if ok.size > 1 else 0.0
    half = 1.96 * std / np.sqrt(ok.size) if ok.size > 1 else 0.0
    return TrialSummary(values, mean, std, float(np.median(ok)), half, failures)


def _worker(payload: tuple) -> float:
    fn, seed, args, kwargs = payload
    return float(fn(seed, *args, **kwargs))


def run_trials(
    fn: Callable[..., float],
    trials: int,
    *,
    seed: SeedLike = None,
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
    processes: int | None = None,
) -> TrialSummary:
    """Run ``fn(seed_sequence, *args, **kwargs)`` *trials* times.

    ``processes=None`` (or 1) runs serially; an integer > 1 fans out
    over a :mod:`multiprocessing` pool.  Either way trial ``i`` always
    receives the same spawned seed, so serial and parallel runs return
    identical values.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    kwargs = kwargs or {}
    seeds = spawn_seeds(seed, trials)
    payloads = [(fn, s, tuple(args), kwargs) for s in seeds]
    if processes is None or processes <= 1:
        values = np.array([_worker(p) for p in payloads])
    else:
        ctx = mp.get_context("fork" if hasattr(mp, "get_context") else None)
        with ctx.Pool(processes=processes) as pool:
            values = np.array(pool.map(_worker, payloads))
    return summarize_trials(values)
