"""Monte-Carlo trial running, serial or multiprocess.

The pattern follows the HPC guides' batch idiom: a trial function
receives a :class:`numpy.random.SeedSequence` (cheap to pickle) plus
static arguments, and returns a float.  Parent-side code never ships
generators or graphs per trial — graphs go once via the function's
closure-free arguments so fork/spawn costs stay flat.
"""

from __future__ import annotations

import multiprocessing as mp
from dataclasses import dataclass
from collections.abc import Callable, Sequence
from typing import Any

import numpy as np

from .rng import SeedLike, spawn_seeds

__all__ = ["TrialSummary", "run_trials", "summarize_trials"]


@dataclass(frozen=True)
class TrialSummary:
    """Summary statistics over trial outcomes (NaNs = failed trials).

    With a single successful trial ``std`` and ``ci95_half_width`` are
    ``nan``: one sample carries no spread information, and reporting
    ``0.0`` would present a point estimate as a zero-width interval.

    This is the single summary type for the whole repo:
    :func:`repro.analysis.stats.summarize` returns it too (its
    historical ``SummaryStats`` name is an alias), so facade batches,
    Monte-Carlo harness output, and analysis tables all speak one
    schema.
    """

    values: np.ndarray
    mean: float
    std: float
    median: float
    ci95_half_width: float
    failures: int
    q25: float = np.nan
    q75: float = np.nan
    minimum: float = np.nan
    maximum: float = np.nan

    @property
    def trials(self) -> int:
        """Total number of trials, failed ones included."""
        return int(self.values.size)

    @property
    def n(self) -> int:
        """Number of successful (non-NaN) trials."""
        return int(self.values.size) - self.failures

    @property
    def nan_count(self) -> int:
        """Alias of :attr:`failures` (historical ``SummaryStats`` name)."""
        return self.failures


def summarize_trials(values: np.ndarray) -> TrialSummary:
    """Build a :class:`TrialSummary` from raw trial values."""
    values = np.asarray(values, dtype=np.float64).ravel()
    ok = values[~np.isnan(values)]
    failures = int(values.size - ok.size)
    if ok.size == 0:
        return TrialSummary(values, np.nan, np.nan, np.nan, np.nan, failures)
    mean = float(ok.mean())
    # one sample has no spread information: report nan, not a zero-width
    # confidence interval that dresses a point estimate up as certainty
    std = float(ok.std(ddof=1)) if ok.size > 1 else float("nan")
    half = 1.96 * std / np.sqrt(ok.size) if ok.size > 1 else float("nan")
    return TrialSummary(
        values,
        mean,
        std,
        float(np.median(ok)),
        half,
        failures,
        q25=float(np.quantile(ok, 0.25)),
        q75=float(np.quantile(ok, 0.75)),
        minimum=float(ok.min()),
        maximum=float(ok.max()),
    )


def _worker(payload: tuple) -> float:
    fn, seed, args, kwargs = payload
    return float(fn(seed, *args, **kwargs))


def run_trials(
    fn: Callable[..., float],
    trials: int,
    *,
    seed: SeedLike = None,
    args: Sequence[Any] = (),
    kwargs: dict | None = None,
    processes: int | None = None,
) -> TrialSummary:
    """Run ``fn(seed_sequence, *args, **kwargs)`` *trials* times.

    ``processes=None`` (or 1) runs serially; an integer > 1 fans out
    over a :mod:`multiprocessing` pool.  Either way trial ``i`` always
    receives the same spawned seed, so serial and parallel runs return
    identical values.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    kwargs = kwargs or {}
    seeds = spawn_seeds(seed, trials)
    payloads = [(fn, s, tuple(args), kwargs) for s in seeds]
    if processes is None or processes <= 1:
        values = np.array([_worker(p) for p in payloads])
    else:
        with _pool_context().Pool(processes=processes) as pool:
            values = np.array(pool.map(_worker, payloads))
    return summarize_trials(values)


def _pool_context() -> mp.context.BaseContext:
    """Pool context: ``fork`` where the platform offers it (cheapest —
    the graph ships by page sharing), else the platform default
    (``spawn`` on macOS/Windows, where ``get_context("fork")`` raises)."""
    method = "fork" if "fork" in mp.get_all_start_methods() else None
    return mp.get_context(method)
