"""Coverage and trajectory records.

The shapes the paper's arguments reason about — how fast the covered
set grows, how the active-set size breathes — are extracted here from
the raw per-vertex first-activation arrays the processes produce.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CoverageCurve", "coverage_curve", "time_to_cover_fraction"]


@dataclass(frozen=True)
class CoverageCurve:
    """Covered-vertex count as a step function of time.

    ``counts[t]`` is the number of vertices first activated at step
    ``≤ t``; length is ``last_activation + 1`` (or 1 for an uncovered
    run with no activity).
    """

    counts: np.ndarray
    n: int

    @property
    def fractions(self) -> np.ndarray:
        """``counts / n``."""
        return self.counts / self.n

    def time_to_fraction(self, fraction: float) -> int | None:
        """First step with at least ``fraction·n`` vertices covered."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        need = int(np.ceil(fraction * self.n))
        idx = np.flatnonzero(self.counts >= need)
        return int(idx[0]) if idx.size else None


def coverage_curve(first_activation: np.ndarray, n: int | None = None) -> CoverageCurve:
    """Build the coverage step function from a first-activation array
    (``-1`` entries mean never activated and are excluded)."""
    fa = np.asarray(first_activation, dtype=np.int64)
    if n is None:
        n = fa.size
    reached = fa[fa >= 0]
    horizon = int(reached.max()) if reached.size else 0
    counts = np.zeros(horizon + 1, dtype=np.int64)
    if reached.size:
        np.add.at(counts, reached, 1)
        counts = np.cumsum(counts)
    return CoverageCurve(counts=counts, n=n)


def time_to_cover_fraction(first_activation: np.ndarray, fraction: float) -> int | None:
    """Shortcut: step when ``fraction`` of all vertices was covered."""
    return coverage_curve(first_activation).time_to_fraction(fraction)
