"""Bit-packed per-(trial, vertex) visited masks for the cover engines.

The dense state the batched cover engines used to carry — one boolean
per (trial, vertex) — costs ``trials · n`` bytes, which at ``n = 10^6``
and 32 trials is 32 MB of pure bookkeeping.  A :class:`BitMask` packs
the same state to ``n / 8`` bytes per trial and keeps the hot
operations vectorized:

* membership tests gather single bytes (``data[pos] & bit``);
* scatter-sets over **sorted** flat ids group same-byte writes with
  one ``np.bitwise_or.reduceat`` (no slow ``ufunc.at``) — sorted flat
  ids make byte positions nondecreasing, which is exactly what the
  engines' frontier arrays already guarantee;
* per-trial cover counts stream through a 256-entry popcount table —
  but the engines never call it per step: they count freshly set bits
  incrementally (the streaming cover-counter) and use :meth:`counts`
  only for initialisation and audits.

Flat ids follow the engines' convention: trial ``r``'s copy of vertex
``v`` lives at ``r * n + v``.

Bit-packing pays an address computation (``flat -> byte, bit``) on
every access; below ~1 MB of state a plain boolean array is both
small and measurably faster (no divisions, direct fancy indexing).
:func:`visited_mask` picks the backend — :class:`DenseMask` under
:data:`DENSE_LIMIT` positions, :class:`BitMask` above — and the two
expose the same five operations, so the engines never branch on it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["DENSE_LIMIT", "BitMask", "DenseMask", "popcount", "visited_mask"]

#: rows * n at or below this uses the dense boolean backend (1 MB of
#: state); the 10^6-vertex cells stay bit-packed
DENSE_LIMIT = 1 << 20

#: bit value of ``v & 7`` — LUT keeps the result uint8 without casts
_BIT = (np.uint8(1) << np.arange(8, dtype=np.uint8)).astype(np.uint8)

#: popcount of a byte
_POPCOUNT = np.array([bin(i).count("1") for i in range(256)], dtype=np.int64)


def popcount(data: np.ndarray) -> int:
    """Total number of set bits in a ``uint8`` array."""
    return int(_POPCOUNT[data].sum())


class BitMask:
    """``rows`` independent bit-packed masks over ``n`` positions each.

    Attributes
    ----------
    rows : int
        Number of masks (one per live trial).
    n : int
        Positions per mask (the vertex count).
    nbytes_row : int
        Bytes per mask, ``ceil(n / 8)``.
    data : numpy.ndarray
        The flat ``uint8[rows * nbytes_row]`` backing store.
    """

    __slots__ = ("rows", "n", "nbytes_row", "data")

    def __init__(self, rows: int, n: int) -> None:
        if rows < 0 or n < 1:
            raise ValueError("BitMask needs rows >= 0 and n >= 1")
        self.rows = rows
        self.n = n
        self.nbytes_row = (n + 7) >> 3
        self.data = np.zeros(rows * self.nbytes_row, dtype=np.uint8)

    def _pos_bit(self, flat: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Byte position and bit value of each flat id ``r * n + v``."""
        row = flat // self.n
        v = flat - row * self.n
        return row * self.nbytes_row + (v >> 3), _BIT[v & 7]

    def test_flat(self, flat: np.ndarray) -> np.ndarray:
        """Boolean membership per flat id (any order, repeats fine)."""
        pos, bit = self._pos_bit(flat)
        return (self.data[pos] & bit) != 0

    def set_sorted_flat(self, flat: np.ndarray) -> None:
        """Set bits for **sorted ascending** flat ids (repeats fine).

        Sorted flat ids make byte positions nondecreasing, so equal
        positions are contiguous runs: one ``reduceat`` OR per run
        replaces a read-modify-write race or a slow ``np.bitwise_or.at``.
        """
        if flat.size == 0:
            return
        pos, bit = self._pos_bit(flat)
        starts = np.concatenate(([0], np.flatnonzero(pos[1:] != pos[:-1]) + 1))
        self.data[pos[starts]] |= np.bitwise_or.reduceat(bit, starts)

    def set_unique_rows(self, flat: np.ndarray) -> None:
        """Set bits when every flat id lives in a **distinct row** (at
        most one id per trial — the single-walker engines): byte
        positions are then unique and a plain fancy-index OR is safe."""
        if flat.size == 0:
            return
        pos, bit = self._pos_bit(flat)
        self.data[pos] |= bit

    def test_and_set_sorted(self, flat: np.ndarray) -> np.ndarray:
        """Set bits for sorted **unique** flat ids, returning which
        were freshly clear — the cover engines' fused per-step
        operation (one address computation instead of a test pass
        followed by a set pass).  Unique ids make the pre-write byte
        gather correct per id even when ids share a byte."""
        if flat.size == 0:
            return np.empty(0, dtype=bool)
        pos, bit = self._pos_bit(flat)
        fresh = (self.data[pos] & bit) == 0
        starts = np.concatenate(([0], np.flatnonzero(pos[1:] != pos[:-1]) + 1))
        self.data[pos[starts]] |= np.bitwise_or.reduceat(bit, starts)
        return fresh

    def counts(self) -> np.ndarray:
        """Set-bit count per row (``int64[rows]``) via the popcount
        table — initialisation/audit use, not the per-step path."""
        return (
            _POPCOUNT[self.data].reshape(self.rows, self.nbytes_row).sum(axis=1)
        )

    def keep_rows(self, keep: np.ndarray) -> None:
        """Compact to the rows selected by boolean mask *keep* (the
        engines' finished-trial remap), preserving order."""
        kept = self.data.reshape(self.rows, self.nbytes_row)[keep]
        self.rows = kept.shape[0]
        self.data = np.ascontiguousarray(kept).reshape(-1)


class DenseMask:
    """The small-state backend: one plain ``bool`` per position.

    Same five operations as :class:`BitMask` over the same flat-id
    convention, backed by ``bool[rows * n]`` — 8x the memory, zero
    address arithmetic.  :func:`visited_mask` selects it whenever the
    whole mask fits in :data:`DENSE_LIMIT` bytes anyway, where the
    packing overhead is all cost and no benefit.
    """

    __slots__ = ("rows", "n", "data")

    def __init__(self, rows: int, n: int) -> None:
        if rows < 0 or n < 1:
            raise ValueError("DenseMask needs rows >= 0 and n >= 1")
        self.rows = rows
        self.n = n
        self.data = np.zeros(rows * n, dtype=bool)

    def test_flat(self, flat: np.ndarray) -> np.ndarray:
        """Boolean membership per flat id (any order, repeats fine)."""
        return self.data[flat]

    def set_sorted_flat(self, flat: np.ndarray) -> None:
        """Set positions (sortedness not required here, but the
        callers' contract stays the sorted one BitMask needs)."""
        self.data[flat] = True

    def set_unique_rows(self, flat: np.ndarray) -> None:
        """Set positions, one id per row (same write either way)."""
        self.data[flat] = True

    def test_and_set_sorted(self, flat: np.ndarray) -> np.ndarray:
        """Set sorted unique flat ids, returning which were fresh."""
        fresh = ~self.data[flat]
        self.data[flat] = True
        return fresh

    def counts(self) -> np.ndarray:
        """Set-position count per row (``int64[rows]``)."""
        return self.data.reshape(self.rows, self.n).sum(axis=1, dtype=np.int64)

    def keep_rows(self, keep: np.ndarray) -> None:
        """Compact to the rows selected by boolean mask *keep*."""
        kept = self.data.reshape(self.rows, self.n)[keep]
        self.rows = kept.shape[0]
        self.data = np.ascontiguousarray(kept).reshape(-1)


def visited_mask(rows: int, n: int) -> BitMask | DenseMask:
    """The engines' visited-state factory: dense below the limit.

    Backend choice never touches the RNG stream, so engine values are
    identical either way; only footprint and speed differ.

    Parameters
    ----------
    rows : int
        Number of per-trial masks.
    n : int
        Positions per mask (the vertex count).

    Returns
    -------
    BitMask or DenseMask
        :class:`DenseMask` when ``rows * n <= DENSE_LIMIT``,
        :class:`BitMask` (n/8 bytes per row) above.
    """
    if rows * n <= DENSE_LIMIT:
        return DenseMask(rows, n)
    return BitMask(rows, n)
