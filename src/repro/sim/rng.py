"""Deterministic random-number-stream management.

Every stochastic entry point in :mod:`repro` accepts a ``seed`` argument
that may be ``None`` (fresh OS entropy), an integer, a
:class:`numpy.random.SeedSequence`, or an existing
:class:`numpy.random.Generator`.  :func:`resolve_rng` normalises all of
these to a ``Generator``.

For parallel Monte-Carlo work we never share a ``Generator`` between
trials; instead :func:`spawn_seeds` derives statistically independent
child :class:`~numpy.random.SeedSequence` objects, which are cheap to
pickle across process boundaries (the mpi4py-style idiom: ship small
descriptors, not live state).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Union

import numpy as np

__all__ = [
    "SeedLike",
    "resolve_rng",
    "resolve_seed_sequence",
    "spawn_seeds",
    "spawn_rngs",
    "random_choice_weighted",
]

#: Anything accepted by the ``seed=`` parameter of repro's stochastic APIs.
SeedLike = Union[None, int, Sequence[int], np.random.SeedSequence, np.random.Generator]


def resolve_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    Passing an existing ``Generator`` returns it unchanged (no copy), so
    sequential calls sharing one generator consume a single stream.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    return np.random.default_rng(seed)


def resolve_seed_sequence(seed: SeedLike = None) -> np.random.SeedSequence:
    """Return a :class:`~numpy.random.SeedSequence` for *seed*.

    Raises :class:`TypeError` for live ``Generator`` inputs: a generator
    cannot be turned back into a reproducible seed.
    """
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "cannot derive a SeedSequence from a live Generator; "
            "pass an int or SeedSequence instead"
        )
    if isinstance(seed, np.random.SeedSequence):
        return seed
    return np.random.SeedSequence(seed)


def spawn_seeds(seed: SeedLike, n: int) -> list[np.random.SeedSequence]:
    """Derive *n* independent child seed sequences from *seed*.

    The children are suitable for distributing to worker processes; each
    yields a stream independent of its siblings and of the parent.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    return resolve_seed_sequence(seed).spawn(n)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive *n* independent generators from *seed* (see :func:`spawn_seeds`)."""
    return [np.random.default_rng(s) for s in spawn_seeds(seed, n)]


def random_choice_weighted(
    rng: np.random.Generator, weights: np.ndarray, size: int | None = None
) -> np.ndarray | int:
    """Sample indices proportionally to *weights* (need not be normalised).

    A thin, allocation-conscious wrapper over inverse-CDF sampling used by
    the directed-walk simulators, where per-row ``Generator.choice`` calls
    would dominate the profile.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    cdf = np.cumsum(weights)
    total = cdf[-1]
    if total <= 0:
        raise ValueError("weights must not all be zero")
    if size is None:
        return int(np.searchsorted(cdf, rng.random() * total, side="right"))
    u = rng.random(size) * total
    return np.searchsorted(cdf, u, side="right").astype(np.int64)
