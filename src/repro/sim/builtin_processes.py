"""Built-in :class:`~repro.sim.processes.ProcessSpec` registrations.

One entry per process family the paper discusses.  Imported lazily by
the registry (never at ``repro.sim`` import time) because the
factories live in :mod:`repro.core` and :mod:`repro.walks`, which
themselves import :mod:`repro.sim`.

Every factory keeps the exact RNG-consumption order of the legacy
per-process helper it supersedes, so ``simulate(graph, process=p,
seed=s)`` reproduces ``cobra_cover_time`` / ``walt_cover_time`` /
``push_spread_time`` / … seed-for-seed — the conformance suite in
``tests/sim/test_facade.py`` pins this.
"""

from __future__ import annotations

import numpy as np

from ..core import biased as _biased_mod
from ..core import cobra as _cobra_mod
from ..core import walt as _walt_mod
from ..walks import branching as _branching_mod
from ..walks import coalescing as _coalescing_mod
from ..walks import gossip as _gossip_mod
from ..walks import minima as _minima_mod
from ..walks import parallel as _parallel_mod
from ..walks import simple as _simple_mod
from .batch import (
    batched_biased_cover_trials,
    batched_branching_cover_trials,
    batched_coalescing_cover_trials,
    batched_cobra_cover_trials,
    batched_cobra_hit_trials,
    batched_gossip_hit_trials,
    batched_gossip_spread_trials,
    batched_lazy_cover_trials,
    batched_lazy_hit_trials,
    batched_parallel_walks_cover_trials,
    batched_walt_cover_trials,
    batched_walt_hit_trials,
)
from .processes import ProcessSpec, register_process
from .rng import resolve_rng

__all__: list[str] = []


def _scalar_start(start) -> int:
    """Collapse facade-style ``start`` to the single vertex single-pebble
    processes require."""
    arr = np.atleast_1d(np.asarray(start, dtype=np.int64))
    if arr.size != 1:
        raise ValueError("this process takes a single start vertex")
    return int(arr[0])


# ----------------------------------------------------------------------
# factories (signature: graph, *, start, seed, target, **params)
# ----------------------------------------------------------------------
def _make_cobra(graph, *, start=0, seed=None, target=None, k=2, record_history=False):
    return _cobra_mod.CobraWalk(
        graph, k=k, start=start, seed=seed, record_history=record_history
    )


def _make_simple(graph, *, start=0, seed=None, target=None):
    return _simple_mod.RandomWalk(graph, start=_scalar_start(start), lazy=False, seed=seed)


def _make_lazy(graph, *, start=0, seed=None, target=None):
    return _simple_mod.RandomWalk(graph, start=_scalar_start(start), lazy=True, seed=seed)


def _make_walt(graph, *, start=0, seed=None, target=None, delta=0.5, lazy=True):
    rng = resolve_rng(seed)
    positions = _walt_mod.walt_start_positions(graph, delta, start, rng)
    return _walt_mod.WaltProcess(graph, positions, lazy=lazy, seed=rng)


def _make_parallel(graph, *, start=0, seed=None, target=None, walkers=2):
    return _parallel_mod.ParallelWalks(graph, walkers=walkers, start=start, seed=seed)


def _make_branching(
    graph, *, start=0, seed=None, target=None, k=2, population_cap=1_000_000
):
    return _branching_mod.BranchingWalk(
        graph,
        k=k,
        start=_scalar_start(start),
        seed=seed,
        population_cap=population_cap,
    )


def _make_coalescing(graph, *, start=None, seed=None, target=None, walkers=None):
    """Walkers spread per the classical setting; an *array* ``start``
    places them explicitly.  A scalar start would silently mean a
    single trivially-coalesced walker, so only the facade's default
    ``0`` is tolerated (and ignored, reproducing ``coalescence_time``);
    any other scalar raises."""
    rng = resolve_rng(seed)
    if start is not None and np.ndim(start) > 0:
        positions = np.asarray(start, dtype=np.int64)
    else:
        if start not in (None, 0):
            raise ValueError(
                "the coalescing process takes an array of walker positions "
                "as start (or the walkers= count); a scalar start has no "
                "meaning for a multi-walker coalescing system"
            )
        positions = _coalescing_mod.coalescing_start_positions(graph, walkers, rng)
    return _coalescing_mod.CoalescingWalks(graph, positions, seed=rng)


def _make_push(graph, *, start=0, seed=None, target=None):
    return _gossip_mod.GossipSpread(
        graph, start=_scalar_start(start), push=True, pull=False, seed=seed
    )


def _make_pull(graph, *, start=0, seed=None, target=None):
    return _gossip_mod.GossipSpread(
        graph, start=_scalar_start(start), push=False, pull=True, seed=seed
    )


def _make_push_pull(graph, *, start=0, seed=None, target=None):
    return _gossip_mod.GossipSpread(
        graph, start=_scalar_start(start), push=True, pull=True, seed=seed
    )


def _make_branching_minima(
    graph, *, start=None, seed=None, target=None, k=2, generations=32,
    count_cap=10**12,
):
    """``generations`` is consumed by the facade as the step budget
    (``default_budget``); the walk itself is horizon-free.  The
    facade's default ``start=0`` (the reflecting left end of the line
    — never what a minima sweep wants) maps to the line's midpoint,
    mirroring how the coalescing factory treats the facade default;
    any other scalar is an explicit line coordinate."""
    if start is not None and np.ndim(start) > 0:
        raise ValueError("branching_minima takes a single start coordinate")
    if start in (None, 0):
        start = graph.n // 2
    return _minima_mod.BranchingMinimaWalk(
        graph, k=k, start=int(start), seed=seed, count_cap=count_cap
    )


def _make_biased(graph, *, start=0, seed=None, target=None, eps=None, controller=None):
    if target is None:
        raise ValueError("the biased walk needs a target (its controller steers toward it)")
    return _biased_mod.BiasedWalk(
        graph,
        target,
        start=_scalar_start(start),
        eps=eps,
        controller=controller,
        seed=seed,
    )


def _simple_batch_cover(graph, *, trials, start=0, seed=None, max_steps=None):
    """Vectorized simple-walk cover engine (one row of state per trial)."""
    return _simple_mod.rw_cover_trials(
        graph, start=_scalar_start(start), trials=trials, seed=seed, max_steps=max_steps
    )


def _simple_batch_hit(graph, *, trials, target, start=0, seed=None, max_steps=None):
    """Vectorized simple-walk hitting engine (``rw_hitting_trials``)."""
    return _simple_mod.rw_hitting_trials(
        graph,
        target,
        start=_scalar_start(start),
        trials=trials,
        seed=seed,
        max_steps=max_steps,
    )


def _cobra_batch_hit(graph, *, trials, target, start=0, seed=None, max_steps=None, k=2):
    return batched_cobra_hit_trials(
        graph, target, trials=trials, k=k, start=start, seed=seed, max_steps=max_steps
    )


def _walt_batch_cover(
    graph, *, trials, start=0, seed=None, max_steps=None, delta=0.5, lazy=True
):
    return batched_walt_cover_trials(
        graph,
        trials=trials,
        delta=delta,
        lazy=lazy,
        start=start,
        seed=seed,
        max_steps=max_steps,
    )


def _walt_batch_hit(
    graph, *, trials, target, start=0, seed=None, max_steps=None, delta=0.5, lazy=True
):
    return batched_walt_hit_trials(
        graph,
        target,
        trials=trials,
        delta=delta,
        lazy=lazy,
        start=start,
        seed=seed,
        max_steps=max_steps,
    )


def _parallel_batch_cover(graph, *, trials, start=0, seed=None, max_steps=None, walkers=2):
    return batched_parallel_walks_cover_trials(
        graph,
        trials=trials,
        walkers=walkers,
        start=start,
        seed=seed,
        max_steps=max_steps,
    )


def _lazy_batch_cover(graph, *, trials, start=0, seed=None, max_steps=None):
    return batched_lazy_cover_trials(
        graph, trials=trials, start=_scalar_start(start), seed=seed, max_steps=max_steps
    )


def _lazy_batch_hit(graph, *, trials, target, start=0, seed=None, max_steps=None):
    return batched_lazy_hit_trials(
        graph,
        target,
        trials=trials,
        start=_scalar_start(start),
        seed=seed,
        max_steps=max_steps,
    )


def _biased_batch_cover(
    graph, *, trials, start=0, seed=None, max_steps=None, target=None,
    eps=None, controller=None,
):
    """``target`` arrives via the facade's target-forwarding (the
    signature-declared keyword); the biased walk is undefined without
    one, matching the factory's error."""
    if target is None:
        raise ValueError("the biased walk needs a target (its controller steers toward it)")
    return batched_biased_cover_trials(
        graph,
        target,
        trials=trials,
        start=_scalar_start(start),
        seed=seed,
        max_steps=max_steps,
        eps=eps,
        controller=controller,
    )


def _branching_batch_cover(
    graph, *, trials, start=0, seed=None, max_steps=None, k=2,
    population_cap=1_000_000,
):
    return batched_branching_cover_trials(
        graph,
        trials=trials,
        k=k,
        start=_scalar_start(start),
        seed=seed,
        max_steps=max_steps,
        population_cap=population_cap,
    )


def _coalescing_batch_cover(
    graph, *, trials, start=None, seed=None, max_steps=None, walkers=None
):
    return batched_coalescing_cover_trials(
        graph,
        trials=trials,
        walkers=walkers,
        start=start,
        seed=seed,
        max_steps=max_steps,
    )


def _gossip_batch_cover(push: bool, pull: bool):
    def engine(graph, *, trials, start=0, seed=None, max_steps=None):
        return batched_gossip_spread_trials(
            graph,
            trials=trials,
            start=_scalar_start(start),
            seed=seed,
            max_steps=max_steps,
            push=push,
            pull=pull,
        )

    return engine


def _gossip_batch_hit(push: bool, pull: bool):
    def engine(graph, *, trials, target, start=0, seed=None, max_steps=None):
        return batched_gossip_hit_trials(
            graph,
            target,
            trials=trials,
            start=_scalar_start(start),
            seed=seed,
            max_steps=max_steps,
            push=push,
            pull=pull,
        )

    return engine


# ----------------------------------------------------------------------
# registrations (budgets mirror each legacy helper's default)
# ----------------------------------------------------------------------
register_process(
    ProcessSpec(
        name="cobra",
        factory=_make_cobra,
        capabilities=frozenset({"cover", "hit", "multi_source"}),
        default_metric="cover",
        default_params={"k": 2},
        default_budget=lambda g, p: _cobra_mod._default_budget(g.n),
        batch_cover=batched_cobra_cover_trials,
        batch_hit=_cobra_batch_hit,
        description="k-cobra walk (§2): branch to k uniform neighbors, coalesce on meeting",
    )
)

register_process(
    ProcessSpec(
        name="simple",
        factory=_make_simple,
        capabilities=frozenset({"cover", "hit"}),
        default_metric="cover",
        default_budget=lambda g, p: _simple_mod._cover_budget(g.n),
        batch_cover=_simple_batch_cover,
        batch_hit=_simple_batch_hit,
        description="simple random walk (Feige's classical cover-time baseline)",
    )
)

register_process(
    ProcessSpec(
        name="lazy",
        factory=_make_lazy,
        capabilities=frozenset({"cover", "hit"}),
        default_metric="cover",
        default_budget=lambda g, p: _simple_mod._cover_budget(g.n),
        batch_cover=_lazy_batch_cover,
        batch_hit=_lazy_batch_hit,
        description="lazy random walk (holds with probability 1/2)",
    )
)

register_process(
    ProcessSpec(
        name="walt",
        factory=_make_walt,
        capabilities=frozenset({"cover", "hit", "multi_source"}),
        default_metric="cover",
        default_params={"delta": 0.5, "lazy": True},
        default_budget=lambda g, p: max(20_000, 1000 * g.n),
        batch_cover=_walt_batch_cover,
        batch_hit=_walt_batch_hit,
        description="Walt (§4): δn ordered pebbles, the cobra walk's analysis proxy",
    )
)

register_process(
    ProcessSpec(
        name="parallel",
        factory=_make_parallel,
        capabilities=frozenset({"cover", "hit", "multi_source"}),
        default_metric="cover",
        default_params={"walkers": 2},
        default_budget=lambda g, p: _parallel_mod._default_budget(
            g.n, int(p.get("walkers", 2))
        ),
        batch_cover=_parallel_batch_cover,
        description="k independent parallel random walks (Alon et al.)",
    )
)

register_process(
    ProcessSpec(
        name="branching",
        factory=_make_branching,
        capabilities=frozenset({"cover", "hit"}),
        default_metric="cover",
        default_params={"k": 2, "population_cap": 1_000_000},
        default_budget=lambda g, p: max(10_000, 50 * g.n),
        batch_cover=_branching_batch_cover,
        description="pure branching walk (no coalescence): population explodes",
    )
)

register_process(
    ProcessSpec(
        name="coalescing",
        factory=_make_coalescing,
        capabilities=frozenset({"coalesce", "cover", "multi_source"}),
        default_metric="coalesce",
        default_params={"walkers": None},
        default_budget=lambda g, p: max(100_000, 20 * g.n**2),
        batch_cover=_coalescing_batch_cover,
        description="coalescing random walks (voter-model dual): walkers merge on meeting",
    )
)

register_process(
    ProcessSpec(
        name="push",
        factory=_make_push,
        capabilities=frozenset({"spread", "hit"}),
        default_metric="spread",
        default_budget=lambda g, p: _gossip_mod._budget(g.n),
        batch_cover=_gossip_batch_cover(push=True, pull=False),
        batch_hit=_gossip_batch_hit(push=True, pull=False),
        description="push gossip: every informed vertex tells one uniform neighbor",
    )
)

register_process(
    ProcessSpec(
        name="pull",
        factory=_make_pull,
        capabilities=frozenset({"spread", "hit"}),
        default_metric="spread",
        default_budget=lambda g, p: _gossip_mod._budget(g.n),
        batch_cover=_gossip_batch_cover(push=False, pull=True),
        batch_hit=_gossip_batch_hit(push=False, pull=True),
        description="pull gossip: every uninformed vertex polls one uniform neighbor",
    )
)

register_process(
    ProcessSpec(
        name="push_pull",
        factory=_make_push_pull,
        capabilities=frozenset({"spread", "hit"}),
        default_metric="spread",
        default_budget=lambda g, p: _gossip_mod._budget(g.n),
        batch_cover=_gossip_batch_cover(push=True, pull=True),
        batch_hit=_gossip_batch_hit(push=True, pull=True),
        description="combined push-pull gossip",
    )
)

register_process(
    ProcessSpec(
        name="biased",
        factory=_make_biased,
        capabilities=frozenset({"hit", "cover"}),
        default_metric="hit",
        default_params={"eps": None},
        default_budget=lambda g, p: 10_000_000,
        batch_cover=_biased_batch_cover,
        description="ε-/inverse-degree-biased walk (§5.1, Azar et al.)",
    )
)

register_process(
    ProcessSpec(
        name="branching_minima",
        factory=_make_branching_minima,
        capabilities=frozenset({"min"}),
        default_metric="min",
        default_params={"k": 2, "generations": 32, "count_cap": 10**12},
        default_budget=lambda g, p: int(p.get("generations", 32)),
        description="branching walk on the ℤ-line: n'th-generation minimum position",
    )
)
