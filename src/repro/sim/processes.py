"""The process registry: one declarative entry per stochastic process.

Mirrors :mod:`repro.experiments.registry` for the *processes* the paper
compares — cobra walks, Walt, simple/lazy/parallel random walks,
branching, coalescing, gossip push/pull, and biased walks.  Each
:class:`ProcessSpec` bundles a factory returning a
:class:`~repro.sim.engine.SteppingProcess` together with declared
capabilities (which metrics make sense) and the process's default step
budget, so the :mod:`repro.sim.facade` can drive any of them through
one ``simulate()`` / ``run_batch()`` entry point.

Adding a new process variant (the branching-walk literature keeps
producing them) is one :func:`register_process` call — no new module of
sweep glue.

Capabilities
------------
``cover``
    The process activates/visits vertices and can cover the graph;
    ``simulate(..., metric="cover")`` is meaningful.
``hit``
    First-activation of a single target vertex is meaningful.
``spread``
    Rumor-spreading flavor of coverage (the informed set only grows);
    drives the same stopping rule as ``cover``.
``coalesce``
    The process has a shrinking walker population and a coalescence
    time (``metric="coalesce"``).
``min``
    The process tracks a minimum position (branching-random-walk
    minima à la Addario-Berry–Reed); ``metric="min"`` runs a fixed
    horizon of generations and reports the final generation's minimum
    displacement.
``multi_source``
    The factory accepts an array of start vertices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from collections.abc import Callable, Mapping
from typing import Any

from ..graphs.base import Graph
from .engine import SteppingProcess

__all__ = [
    "ProcessSpec",
    "register_process",
    "get_process",
    "all_processes",
    "process_names",
]

#: the metric vocabulary understood by the facade
METRICS = ("cover", "hit", "spread", "coalesce", "min")

#: factory signature: ``factory(graph, *, start, seed, target, **params)``
ProcessFactory = Callable[..., SteppingProcess]

#: budget signature: ``default_budget(graph, params) -> int``
BudgetFn = Callable[[Graph, Mapping[str, Any]], int]

#: batched-cover signature:
#: ``batch_cover(graph, *, trials, start, seed, max_steps, **params) -> float64[trials]``
BatchCoverFn = Callable[..., Any]

#: batched-hit signature:
#: ``batch_hit(graph, *, trials, start, target, seed, max_steps, **params) -> float64[trials]``
BatchHitFn = Callable[..., Any]


@dataclass(frozen=True)
class ProcessSpec:
    """A registered stochastic process.

    Attributes
    ----------
    name : str
        Registry key (``"cobra"``, ``"walt"``, ``"push"``, …).
    factory : ProcessFactory
        Builds a fresh stepping process on a graph.  Keyword-only
        arguments ``start``, ``seed``, and ``target`` are always
        accepted (and ignored where meaningless); ``**params`` are the
        process's own knobs (``k``, ``delta``, ``walkers``, …).
    capabilities : frozenset of str
        Subset of :data:`METRICS` plus ``"multi_source"``.
    default_metric : str
        The metric ``simulate()`` uses when none is given.
    default_params : Mapping
        The factory's tunable defaults, for documentation/CLI listing.
    default_budget : BudgetFn
        Step budget matching the process's legacy helper, so facade
        runs reproduce the historical helpers seed-for-seed.
    batch_cover : BatchCoverFn or None
        Optional vectorized engine advancing all cover/spread trials in
        one ``(trials, n)`` frontier; ``run_batch`` uses it when
        available.
    batch_hit : BatchHitFn or None
        Optional vectorized engine for ``metric="hit"`` sweeps: all
        trials race to first activation of the target in one flat
        frontier; ``run_batch`` uses it when available.
    description : str
        One-line positioning of the process in the paper.
    """

    name: str
    factory: ProcessFactory
    capabilities: frozenset[str]
    default_metric: str
    default_budget: BudgetFn
    default_params: Mapping[str, Any] = field(default_factory=dict)
    batch_cover: BatchCoverFn | None = None
    batch_hit: BatchHitFn | None = None
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "default_params", MappingProxyType(dict(self.default_params)))
        unknown = self.capabilities - set(METRICS) - {"multi_source"}
        if unknown:
            raise ValueError(f"unknown capabilities for {self.name!r}: {sorted(unknown)}")
        if self.default_metric not in self.capabilities:
            raise ValueError(
                f"default metric {self.default_metric!r} not in capabilities of {self.name!r}"
            )

    def supports(self, metric: str) -> bool:
        """Whether *metric* is declared for this process.

        Parameters
        ----------
        metric:
            One of :data:`METRICS` (or ``"multi_source"``).

        Returns
        -------
        bool
            ``True`` when the capability is declared.
        """
        return metric in self.capabilities

    def make(self, graph: Graph, **kwargs: Any) -> SteppingProcess:
        """Instantiate the process (thin sugar over ``factory``).

        Parameters
        ----------
        graph:
            The graph to run on.
        **kwargs:
            Forwarded to the factory (``start``, ``seed``, ``target``,
            and the process's own knobs).

        Returns
        -------
        SteppingProcess
            A fresh stepping process.
        """
        return self.factory(graph, **kwargs)


_REGISTRY: dict[str, ProcessSpec] = {}
_LOADED = False


def register_process(spec: ProcessSpec) -> ProcessSpec:
    """Register *spec*, rejecting duplicate names.

    Parameters
    ----------
    spec : ProcessSpec
        The spec to add under ``spec.name``.

    Returns
    -------
    ProcessSpec
        *spec* itself, for decorator-style use.
    """
    if spec.name in _REGISTRY:
        raise ValueError(f"duplicate process name {spec.name!r}")
    _REGISTRY[spec.name] = spec
    return spec


def get_process(name: str) -> ProcessSpec:
    """Look up a process, raising with the known names on miss.

    Parameters
    ----------
    name : str
        Registry key, e.g. ``"cobra"``.

    Returns
    -------
    ProcessSpec
        The registered spec.
    """
    _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown process {name!r}; known: {known}") from None


def all_processes() -> list[ProcessSpec]:
    """All registered specs, sorted by name.

    Returns
    -------
    list of ProcessSpec
        One entry per registered process.
    """
    _load_builtins()
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def process_names() -> list[str]:
    """Sorted registry keys.

    Returns
    -------
    list of str
        The registered process names, sorted.
    """
    _load_builtins()
    return sorted(_REGISTRY)


def _load_builtins() -> None:
    """Import the built-in registrations exactly once (lazily, because
    they import :mod:`repro.core` / :mod:`repro.walks`, which in turn
    import :mod:`repro.sim` — the same deferred-import pattern as
    :func:`repro.experiments.registry._load_all`)."""
    global _LOADED
    if not _LOADED:
        _LOADED = True
        from . import builtin_processes  # noqa: F401
