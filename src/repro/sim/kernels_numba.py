"""Compiled (numba) backend for the hottest batched trial engines.

The NumPy engines in :mod:`repro.sim.batch` advance all trials in one
flat ``(trials * n,)`` state but still pay one Python-level numpy-call
cascade per global step.  This module provides drop-in twins for the
hottest flat-frontier loops — cobra cover/hit, simple/parallel walks,
Walt — whose per-step deterministic work (degree gathers, CSR neighbor
indexing, dedupe scans, coverage counting) runs inside ``@njit``
kernels, selected through ``select_execution_path(backend=...)``.

**Bit-exactness contract.**  Every engine here is *bit-exact* against
its NumPy twin: same seed, same values, for every graph both backends
accept.  The strategy is strict RNG-stream discipline —

* every ``rng.*`` draw stays at Python level, in the exact Generator
  call order, sizes and dtypes of the NumPy engine (one interleaved
  stream, per the engines' documented contract);
* kernels consume the pre-drawn uniform arrays and do only
  deterministic work; a kernel never constructs or advances an RNG
  (enforced statically by repro-lint rule RPL140);
* per-element scalar float ops (``u·d``, ``floor``, int64 truncation)
  are IEEE-identical to numpy's vectorized in-place ops, and numba
  compiles them without fastmath contraction, so even the float32
  cobra pair-draw path matches bit for bit.

**Graph lowering.**  Kernels index raw CSR ``indptr``/``indices``
arrays.  A CSR :class:`~repro.graphs.base.Graph` lowers for free; an
arithmetic oracle (torus, hypercube, circulant, Kronecker) lowers via
:func:`repro.graphs.implicit.to_csr`, which refuses above 5M vertices
— the NumPy backend stays the million-vertex path (an arithmetic
oracle is pinned seed-for-seed identical to its materialised CSR twin
by ``tests/graphs/test_implicit.py``, so lowering preserves the
stream).  Visited state is a dense ``bool[a*n]`` array rather than the
NumPy engines' bit-packed masks; mask backend choice never touches the
RNG stream, so values are unaffected (``repro.sim.bitmask``) — the
trade is ``n`` bytes/trial of footprint for branch-free kernel writes.

**Fallback.**  When numba is not importable the module still imports:
``NUMBA_AVAILABLE`` is ``False`` and ``_njit`` degrades to the
identity decorator, so every kernel runs as pure (slow) Python.  The
facade never *selects* this backend without numba unless explicitly
forced, but the conformance suite monkeypatches ``NUMBA_AVAILABLE``
to exercise the full dispatch path and verify seed-for-seed parity
even on numba-less machines.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

import numpy as np

from ..graphs.base import Graph
from ..graphs.implicit import NeighborOracle, as_oracle, to_csr
from .batch import (
    GraphLike,
    _check_samplable,
    _cobra_ftype,
    _degree_table,
    _validated_start,
    _walt_initial_positions,
)
from .rng import SeedLike, resolve_rng

__all__ = [
    "KERNEL_ENGINES",
    "NUMBA_AVAILABLE",
    "csr_arrays",
    "kernel_for",
    "lowerable",
    "numba_cobra_cover_trials",
    "numba_cobra_hit_trials",
    "numba_parallel_cover_trials",
    "numba_simple_cover_trials",
    "numba_simple_hit_trials",
    "numba_walt_cover_trials",
    "numba_walt_hit_trials",
]

_F = TypeVar("_F", bound=Callable[..., Any])

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _numba_njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - the repo CI image has numba
    _numba_njit = None
    NUMBA_AVAILABLE = False


def _njit(func: _F) -> _F:
    """``numba.njit(cache=True)`` when numba is importable, identity
    otherwise — kernels stay runnable (as pure Python) either way, so
    the conformance suite can pin bit-exactness on numba-less hosts."""
    if _numba_njit is None:
        return func
    return _numba_njit(cache=True)(func)  # type: ignore[no-any-return]


def csr_arrays(graph: GraphLike) -> tuple[np.ndarray, np.ndarray]:
    """``(indptr, indices)`` for the kernels, lowering oracles via
    :func:`~repro.graphs.implicit.to_csr` (refused above 5M vertices —
    use the NumPy backend there)."""
    csr = graph if isinstance(graph, Graph) else to_csr(as_oracle(graph))
    return csr.indptr, csr.indices


# ----------------------------------------------------------------------
# kernels: deterministic work only — no RNG in here (RPL140)
# ----------------------------------------------------------------------
@_njit
def _cobra_pair_candidates(
    indptr: np.ndarray,
    indices: np.ndarray,
    deg_f: np.ndarray,
    u: np.ndarray,
    front: np.ndarray,
    n: int,
    cand: np.ndarray,
) -> None:
    """Scatter both ``k == 2`` cobra destinations per frontier id into
    *cand* (``2F`` flat ids) from one uniform per id: ``i1 = ⌊u·d⌋``
    and the leftover fraction re-scaled — the same exact-in-floating-
    point split as the NumPy engines' pair path, evaluated per element
    in the table's float width so float32 cells match bit for bit."""
    for i in range(front.size):
        v = front[i] % n
        base = front[i] - v
        d = deg_f[v]
        uu = u[i] * d
        first = np.floor(uu)
        rem = (uu - first) * d
        lo = indptr[v]
        cand[2 * i] = indices[lo + np.int64(first)] + base
        cand[2 * i + 1] = indices[lo + np.int64(rem)] + base


@_njit
def _cobra_k_candidates(
    indptr: np.ndarray,
    indices: np.ndarray,
    deg_f: np.ndarray,
    u: np.ndarray,
    front: np.ndarray,
    n: int,
    cand: np.ndarray,
) -> None:
    """Scatter the ``k`` independent cobra destinations per frontier id
    into *cand* (``k·F`` flat ids); ``u`` is the engines' ``(k, F)``
    uniform block."""
    k = u.shape[0]
    f = front.size
    for j in range(k):
        for i in range(f):
            v = front[i] % n
            lo = indptr[v]
            slot = np.int64(u[j, i] * deg_f[v])
            cand[j * f + i] = indices[lo + slot] + (front[i] - v)


@_njit
def _dedupe_cover(
    cand: np.ndarray,
    n: int,
    covered: np.ndarray,
    count: np.ndarray,
    out_front: np.ndarray,
) -> int:
    """Scan **sorted** candidate flat ids: write the unique ids to
    *out_front* (returning the new frontier size) and fuse the
    first-visit test-and-set plus per-trial cover counting — the
    kernel equivalent of ``scratch.nonzero()`` +
    ``BitMask.test_and_set_sorted`` + ``bincount``."""
    m = 0
    prev = np.int64(-1)
    for i in range(cand.size):
        c = cand[i]
        if c == prev:
            continue
        prev = c
        out_front[m] = c
        m += 1
        if not covered[c]:
            covered[c] = True
            count[c // n] += 1
    return m


@_njit
def _dedupe_hit(
    cand: np.ndarray,
    n: int,
    target: int,
    hit: np.ndarray,
    out_front: np.ndarray,
) -> int:
    """The hit-engine variant of :func:`_dedupe_cover`: no visit
    ledger, just the unique frontier plus per-trial target flags."""
    m = 0
    prev = np.int64(-1)
    for i in range(cand.size):
        c = cand[i]
        if c == prev:
            continue
        prev = c
        out_front[m] = c
        m += 1
        r = c // n
        if c - r * n == target:
            hit[r] = True
    return m


@_njit
def _walk_cover_step(
    indptr: np.ndarray,
    indices: np.ndarray,
    u: np.ndarray,
    pos: np.ndarray,
    covered: np.ndarray,
    count: np.ndarray,
    out: np.ndarray,
    done: np.ndarray,
    n: int,
    t: int,
) -> bool:
    """One lock-step move of every single-walker trial (simple walk):
    neighbor pick from the pre-drawn uniforms, first-visit coverage,
    completion stamping.  Returns whether every trial has finished."""
    all_done = True
    for r in range(pos.size):
        v = pos[r]
        lo = indptr[v]
        d = indptr[v + 1] - lo
        p = indices[lo + np.int64(u[r] * d)]
        pos[r] = p
        flat = r * n + p
        if not covered[flat]:
            covered[flat] = True
            count[r] += 1
            if not done[r] and count[r] == n:
                out[r] = t
                done[r] = True
    for r in range(done.size):
        if not done[r]:
            all_done = False
            break
    return all_done


@_njit
def _walk_hit_step(
    indptr: np.ndarray,
    indices: np.ndarray,
    u: np.ndarray,
    pos: np.ndarray,
    out: np.ndarray,
    alive: np.ndarray,
    target: int,
    t: int,
) -> bool:
    """One lock-step move of every single-walker trial with target
    detection; finished trials keep stepping (the NumPy engine's RNG
    contract).  Returns whether any trial is still unhit."""
    any_alive = False
    for r in range(pos.size):
        v = pos[r]
        lo = indptr[v]
        d = indptr[v + 1] - lo
        p = indices[lo + np.int64(u[r] * d)]
        pos[r] = p
        if alive[r] and p == target:
            out[r] = t
            alive[r] = False
        if alive[r]:
            any_alive = True
    return any_alive


@_njit
def _parallel_cover_step(
    indptr: np.ndarray,
    indices: np.ndarray,
    u: np.ndarray,
    pos: np.ndarray,
    trial_base: np.ndarray,
    covered: np.ndarray,
    count: np.ndarray,
    out: np.ndarray,
    done: np.ndarray,
    n: int,
    t: int,
) -> bool:
    """One lock-step move of all ``trials × walkers`` positions with
    first-wins coverage (first-wins over a dense mask counts each
    freshly covered vertex exactly once — the kernel equivalent of the
    NumPy engine's ``np.unique`` + ``bincount``)."""
    for i in range(pos.size):
        v = pos[i]
        lo = indptr[v]
        d = indptr[v + 1] - lo
        p = indices[lo + np.int64(u[i] * d)]
        pos[i] = p
        flat = trial_base[i] + p
        if not covered[flat]:
            covered[flat] = True
            count[flat // n] += 1
    all_done = True
    for r in range(count.size):
        if not done[r]:
            if count[r] == n:
                out[r] = t
                done[r] = True
            else:
                all_done = False
    return all_done


@_njit
def _walt_group(
    rowbase: np.ndarray,
    flat_pos: np.ndarray,
    tmp: np.ndarray,
    tmp2: np.ndarray,
    leader: np.ndarray,
    vice: np.ndarray,
) -> tuple[int, int]:
    """Per-(trial, vertex) pebble grouping for one Walt move, matching
    :func:`repro.sim.batch._walt_move_batch`'s duplicate-scatter rule:
    the *leader* of a group is its last occurrence (last-write-wins),
    the *vice* the last non-leader occurrence.  Returns ``(L, V)``,
    the leader and vice counts, which size the caller's uniform draws.

    ``tmp``/``tmp2`` deliberately carry stale values between calls:
    every read is at a key written earlier in the same call."""
    mp = flat_pos.size
    for i in range(mp):
        tmp[rowbase[i] + flat_pos[i]] = i
    num_leaders = 0
    for i in range(mp):
        if tmp[rowbase[i] + flat_pos[i]] == i:
            leader[i] = True
            num_leaders += 1
        else:
            leader[i] = False
        vice[i] = False
    for i in range(mp):
        if not leader[i]:
            tmp2[rowbase[i] + flat_pos[i]] = i
    num_vice = 0
    for i in range(mp):
        if not leader[i] and tmp2[rowbase[i] + flat_pos[i]] == i:
            vice[i] = True
            num_vice += 1
    return num_leaders, num_vice


@_njit
def _walt_move(
    indptr: np.ndarray,
    indices: np.ndarray,
    rowbase: np.ndarray,
    flat_pos: np.ndarray,
    leader: np.ndarray,
    vice: np.ndarray,
    u1: np.ndarray,
    u2: np.ndarray,
    u3: np.ndarray,
    d1: np.ndarray,
    d2: np.ndarray,
    newpos: np.ndarray,
) -> None:
    """Apply one grouped Walt move from the pre-drawn uniforms: leaders
    walk on ``u1``, vices on ``u2``, followers coin-flip (``u3 < 0.5``
    picks the leader's destination) — draw-for-draw the NumPy move's
    boolean-mask order, realised as increasing-index scans."""
    mp = flat_pos.size
    jl = 0
    for i in range(mp):
        if leader[i]:
            v = flat_pos[i]
            lo = indptr[v]
            d = indptr[v + 1] - lo
            p = indices[lo + np.int64(u1[jl] * d)]
            jl += 1
            newpos[i] = p
            d1[rowbase[i] + v] = p
    jv = 0
    for i in range(mp):
        if vice[i]:
            v = flat_pos[i]
            lo = indptr[v]
            d = indptr[v + 1] - lo
            p = indices[lo + np.int64(u2[jv] * d)]
            jv += 1
            newpos[i] = p
            d2[rowbase[i] + v] = p
    jf = 0
    for i in range(mp):
        if not leader[i] and not vice[i]:
            key = rowbase[i] + flat_pos[i]
            if u3[jf] < 0.5:
                newpos[i] = d1[key]
            else:
                newpos[i] = d2[key]
            jf += 1


@_njit
def _walt_cover_update(
    rowbase: np.ndarray,
    newpos: np.ndarray,
    covered: np.ndarray,
    count: np.ndarray,
    n: int,
) -> bool:
    """First-wins coverage of the moved pebble block; returns whether
    any vertex was freshly covered."""
    changed = False
    for i in range(newpos.size):
        flat = rowbase[i] + newpos[i]
        if not covered[flat]:
            covered[flat] = True
            count[flat // n] += 1
            changed = True
    return changed


# ----------------------------------------------------------------------
# engines: validation + RNG at Python level, kernels below
# ----------------------------------------------------------------------
def _compact_covered(covered: np.ndarray, keep: np.ndarray, n: int) -> np.ndarray:
    """Drop finished trials' rows from the flat ``bool[a*n]`` ledger."""
    kept = covered.reshape(keep.size, n)[keep]
    return np.ascontiguousarray(kept).reshape(-1)


def numba_cobra_cover_trials(
    graph: GraphLike,
    *,
    trials: int,
    k: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Compiled twin of
    :func:`repro.sim.batch.batched_cobra_cover_trials` — bit-exact at
    every seed (same draws, same values, ``np.nan`` on budget)."""
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if k < 1:
        raise ValueError(f"branching factor k must be >= 1, got {k}")
    n = oracle.n
    start_arr = _validated_start(oracle, start)
    if max_steps is None:
        from ..core.cobra import _default_budget

        max_steps = _default_budget(n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    if start_arr.size == n:
        out[:] = 0.0
        return out

    pair, ftype = _cobra_ftype(oracle, k)
    indptr, indices = csr_arrays(graph)
    deg_f = _degree_table(oracle, ftype)
    nn = np.int64(n)

    a = trials
    alive = np.arange(trials)
    front = (
        np.repeat(np.arange(a, dtype=np.int64) * n, start_arr.size)
        + np.tile(start_arr, a)
    )
    covered = np.zeros(a * n, dtype=bool)
    covered[front] = True
    count = np.full(a, start_arr.size, dtype=np.int64)

    for t in range(1, max_steps + 1):
        f = front.size
        if pair:
            u = rng.random(f, dtype=ftype)
            cand = np.empty(2 * f, dtype=np.int64)
            _cobra_pair_candidates(indptr, indices, deg_f, u, front, nn, cand)
        else:
            u = rng.random((k, f), dtype=ftype)
            cand = np.empty(k * f, dtype=np.int64)
            _cobra_k_candidates(indptr, indices, deg_f, u, front, nn, cand)
        cand.sort()
        buf = np.empty(cand.size, dtype=np.int64)
        m = _dedupe_cover(cand, nn, covered, count, buf)
        front = buf[:m]
        done = count == n
        if done.any():
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            count = count[keep]
            rows = front // nn
            keep_front = keep[rows]
            remap = np.cumsum(keep) - 1
            front = remap[rows[keep_front]] * n + front[keep_front] % nn
            covered = _compact_covered(covered, keep, n)
    return out


def numba_cobra_hit_trials(
    graph: GraphLike,
    target: int,
    *,
    trials: int,
    k: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Compiled twin of
    :func:`repro.sim.batch.batched_cobra_hit_trials` — bit-exact at
    every seed."""
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if k < 1:
        raise ValueError(f"branching factor k must be >= 1, got {k}")
    n = oracle.n
    if not (0 <= target < n):
        raise ValueError("target out of range")
    start_arr = _validated_start(oracle, start)
    if max_steps is None:
        from ..core.cobra import _default_budget

        max_steps = _default_budget(n)
    rng = resolve_rng(seed)

    out = np.full(trials, np.nan)
    if target in start_arr:
        out[:] = 0.0
        return out

    pair, ftype = _cobra_ftype(oracle, k)
    indptr, indices = csr_arrays(graph)
    deg_f = _degree_table(oracle, ftype)
    nn = np.int64(n)

    a = trials
    alive = np.arange(trials)
    front = (
        np.repeat(np.arange(a, dtype=np.int64) * n, start_arr.size)
        + np.tile(start_arr, a)
    )

    for t in range(1, max_steps + 1):
        f = front.size
        if pair:
            u = rng.random(f, dtype=ftype)
            cand = np.empty(2 * f, dtype=np.int64)
            _cobra_pair_candidates(indptr, indices, deg_f, u, front, nn, cand)
        else:
            u = rng.random((k, f), dtype=ftype)
            cand = np.empty(k * f, dtype=np.int64)
            _cobra_k_candidates(indptr, indices, deg_f, u, front, nn, cand)
        cand.sort()
        buf = np.empty(cand.size, dtype=np.int64)
        hit = np.zeros(a, dtype=bool)
        m = _dedupe_hit(cand, nn, target, hit, buf)
        front = buf[:m]
        if hit.any():
            out[alive[hit]] = t
            keep = ~hit
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            rows = front // nn
            keep_front = keep[rows]
            remap = np.cumsum(keep) - 1
            front = remap[rows[keep_front]] * n + front[keep_front] % nn
    return out


def numba_simple_cover_trials(
    graph: GraphLike,
    *,
    trials: int,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Compiled twin of :func:`repro.walks.simple.rw_cover_trials`
    (through the registry's single-start wrapper) — bit-exact at every
    seed."""
    from .builtin_processes import _scalar_start

    start_v = _scalar_start(start)
    if trials < 1:
        raise ValueError("need at least one trial")
    oracle = as_oracle(graph)
    n = oracle.n
    if not (0 <= start_v < n):
        raise ValueError("start out of range")
    if max_steps is None:
        from ..walks.simple import _cover_budget

        max_steps = _cover_budget(n)
    rng = resolve_rng(seed)
    indptr, indices = csr_arrays(graph)

    pos = np.full(trials, start_v, dtype=np.int64)
    covered = np.zeros(trials * n, dtype=bool)
    covered[np.arange(trials, dtype=np.int64) * n + start_v] = True
    count = np.ones(trials, dtype=np.int64)
    out = np.full(trials, np.nan)
    done = np.zeros(trials, dtype=bool)
    nn = np.int64(n)
    for t in range(1, max_steps + 1):
        u = rng.random(trials)
        if _walk_cover_step(indptr, indices, u, pos, covered, count, out, done, nn, t):
            break
    return out


def numba_simple_hit_trials(
    graph: GraphLike,
    target: int,
    *,
    trials: int,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Compiled twin of :func:`repro.walks.simple.rw_hitting_trials`
    (through the registry's single-start wrapper) — bit-exact at every
    seed."""
    from .builtin_processes import _scalar_start

    start_v = _scalar_start(start)
    if trials < 1:
        raise ValueError("need at least one trial")
    oracle = as_oracle(graph)
    n = oracle.n
    if not (0 <= target < n):
        raise ValueError("target out of range")
    if not (0 <= start_v < n):
        raise ValueError("start out of range")
    if max_steps is None:
        from ..walks.simple import _cover_budget

        max_steps = _cover_budget(n)
    rng = resolve_rng(seed)
    out = np.full(trials, np.nan)
    if start_v == target:
        return np.zeros(trials)
    indptr, indices = csr_arrays(graph)
    pos = np.full(trials, start_v, dtype=np.int64)
    alive = np.ones(trials, dtype=bool)
    for t in range(1, max_steps + 1):
        u = rng.random(trials)
        if not _walk_hit_step(indptr, indices, u, pos, out, alive, target, t):
            break
    return out


def numba_parallel_cover_trials(
    graph: GraphLike,
    *,
    trials: int,
    walkers: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Compiled twin of
    :func:`repro.sim.batch.batched_parallel_walks_cover_trials` —
    bit-exact at every seed."""
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if walkers < 1:
        raise ValueError("need at least one walker")
    n = oracle.n
    start_pos = np.atleast_1d(np.asarray(start, dtype=np.int64))
    if start_pos.size == 1:
        start_pos = np.full(walkers, start_pos[0], dtype=np.int64)
    if start_pos.size != walkers:
        raise ValueError("start must be scalar or length == walkers")
    if start_pos.min() < 0 or start_pos.max() >= n:
        raise ValueError("start out of range")
    if max_steps is None:
        from ..walks.parallel import _default_budget

        max_steps = _default_budget(n, walkers)
    rng = resolve_rng(seed)
    indptr, indices = csr_arrays(graph)

    pos = np.tile(start_pos, trials)
    trial_base = np.repeat(np.arange(trials, dtype=np.int64) * n, walkers)
    nn = np.int64(n)
    covered = np.zeros(trials * n, dtype=bool)
    covered[np.unique(trial_base + pos)] = True
    count = np.full(trials, np.unique(start_pos).size, dtype=np.int64)
    out = np.full(trials, np.nan)
    done = count == n
    out[done] = 0.0
    if done.all():
        return out

    for t in range(1, max_steps + 1):
        u = rng.random(pos.size)
        if _parallel_cover_step(
            indptr, indices, u, pos, trial_base, covered, count, out, done, nn, t
        ):
            break
    return out


_EMPTY_U = np.empty(0, dtype=np.float64)


def _walt_move_kernels(
    indptr: np.ndarray,
    indices: np.ndarray,
    positions: np.ndarray,
    move_rows: np.ndarray,
    rng: np.random.Generator,
    tmp: np.ndarray,
    tmp2: np.ndarray,
    d1: np.ndarray,
    d2: np.ndarray,
    n: int,
) -> tuple[np.ndarray, np.ndarray]:
    """One grouped Walt move via the kernels, returning the moved
    ``(m, p)`` block and the flat per-pebble row offsets — the same
    draws, in the same order, as
    :func:`repro.sim.batch._walt_move_batch`."""
    sub = positions[move_rows]
    m, p = sub.shape
    flat_pos = sub.ravel()
    rowbase = np.repeat(move_rows.astype(np.int64) * n, p)
    leader = np.empty(m * p, dtype=bool)
    vice = np.empty(m * p, dtype=bool)
    num_leaders, num_vice = _walt_group(rowbase, flat_pos, tmp, tmp2, leader, vice)
    u1 = rng.random(num_leaders)
    if num_vice:
        u2 = rng.random(num_vice)
        followers = m * p - num_leaders - num_vice
        u3 = rng.random(followers) if followers else _EMPTY_U
    else:
        u2 = _EMPTY_U
        u3 = _EMPTY_U
    newpos = np.empty(m * p, dtype=np.int64)
    _walt_move(
        indptr, indices, rowbase, flat_pos, leader, vice, u1, u2, u3, d1, d2, newpos
    )
    return newpos.reshape(m, p), rowbase


def numba_walt_cover_trials(
    graph: GraphLike,
    *,
    trials: int,
    delta: float = 0.5,
    lazy: bool = True,
    start: int | np.ndarray | None = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Compiled twin of
    :func:`repro.sim.batch.batched_walt_cover_trials` — bit-exact at
    every seed."""
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if not 0 < delta <= 1:
        raise ValueError("delta must be in (0, 1]")
    n = oracle.n
    p = max(1, int(delta * n))
    if max_steps is None:
        max_steps = max(20_000, 1000 * n)
    rng = resolve_rng(seed)
    indptr, indices = csr_arrays(graph)

    positions = _walt_initial_positions(oracle, trials, p, start, rng)

    a = trials
    alive = np.arange(trials)
    nn = np.int64(n)
    covered = np.zeros(a * n, dtype=bool)
    init_flat = np.unique(
        (np.arange(a, dtype=np.int64) * n)[:, None] + positions
    ).ravel()
    covered[init_flat] = True
    count = np.bincount(init_flat // nn, minlength=a).astype(np.int64)
    out = np.full(trials, np.nan)
    done0 = count == n
    if done0.any():
        out[done0] = 0.0
        keep = ~done0
        alive = alive[keep]
        a = alive.size
        if a == 0:
            return out
        positions = positions[keep]
        count = count[keep]
        covered = _compact_covered(covered, keep, n)

    tmp = np.empty(a * n, dtype=np.int64)
    tmp2 = np.empty(a * n, dtype=np.int64)
    d1 = np.empty(a * n, dtype=np.int64)
    d2 = np.empty(a * n, dtype=np.int64)

    for t in range(1, max_steps + 1):
        if lazy:
            move_rows = (rng.random(a) >= 0.5).nonzero()[0]
            if move_rows.size == 0:
                continue
        else:
            move_rows = np.arange(a)
        moved, rowbase = _walt_move_kernels(
            indptr, indices, positions, move_rows, rng, tmp, tmp2, d1, d2, nn
        )
        positions[move_rows] = moved
        if not _walt_cover_update(rowbase, moved.ravel(), covered, count, nn):
            continue
        done = count == n
        if done.any():
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            positions = positions[keep]
            count = count[keep]
            covered = _compact_covered(covered, keep, n)
            tmp = np.empty(a * n, dtype=np.int64)
            tmp2 = np.empty(a * n, dtype=np.int64)
            d1 = np.empty(a * n, dtype=np.int64)
            d2 = np.empty(a * n, dtype=np.int64)
    return out


def numba_walt_hit_trials(
    graph: GraphLike,
    target: int,
    *,
    trials: int,
    delta: float = 0.5,
    lazy: bool = True,
    start: int | np.ndarray | None = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Compiled twin of
    :func:`repro.sim.batch.batched_walt_hit_trials` — bit-exact at
    every seed."""
    oracle = as_oracle(graph)
    _check_samplable(oracle, trials)
    if not 0 < delta <= 1:
        raise ValueError("delta must be in (0, 1]")
    n = oracle.n
    if not (0 <= target < n):
        raise ValueError("target out of range")
    p = max(1, int(delta * n))
    if max_steps is None:
        max_steps = max(20_000, 1000 * n)
    rng = resolve_rng(seed)
    indptr, indices = csr_arrays(graph)

    positions = _walt_initial_positions(oracle, trials, p, start, rng)

    out = np.full(trials, np.nan)
    a = trials
    alive = np.arange(trials)
    nn = np.int64(n)
    hit0 = (positions == target).any(axis=1)
    if hit0.any():
        out[hit0] = 0.0
        keep = ~hit0
        alive = alive[keep]
        a = alive.size
        if a == 0:
            return out
        positions = positions[keep]

    tmp = np.empty(a * n, dtype=np.int64)
    tmp2 = np.empty(a * n, dtype=np.int64)
    d1 = np.empty(a * n, dtype=np.int64)
    d2 = np.empty(a * n, dtype=np.int64)

    for t in range(1, max_steps + 1):
        if lazy:
            move_rows = (rng.random(a) >= 0.5).nonzero()[0]
            if move_rows.size == 0:
                continue
        else:
            move_rows = np.arange(a)
        moved, _ = _walt_move_kernels(
            indptr, indices, positions, move_rows, rng, tmp, tmp2, d1, d2, nn
        )
        positions[move_rows] = moved
        hit_rows = move_rows[(moved == target).any(axis=1)]
        if hit_rows.size:
            done = np.zeros(a, dtype=bool)
            done[hit_rows] = True
            out[alive[done]] = t
            keep = ~done
            alive = alive[keep]
            a = alive.size
            if a == 0:
                break
            positions = positions[keep]
            tmp = np.empty(a * n, dtype=np.int64)
            tmp2 = np.empty(a * n, dtype=np.int64)
            d1 = np.empty(a * n, dtype=np.int64)
            d2 = np.empty(a * n, dtype=np.int64)
    return out


#: compiled engines by ``(process, metric-family)``; ``"cover"`` also
#: serves ``metric="spread"``, mirroring the facade's engine choice
KERNEL_ENGINES: dict[tuple[str, str], Callable[..., np.ndarray]] = {
    ("cobra", "cover"): numba_cobra_cover_trials,
    ("cobra", "hit"): numba_cobra_hit_trials,
    ("simple", "cover"): numba_simple_cover_trials,
    ("simple", "hit"): numba_simple_hit_trials,
    ("parallel", "cover"): numba_parallel_cover_trials,
    ("walt", "cover"): numba_walt_cover_trials,
    ("walt", "hit"): numba_walt_hit_trials,
}


def kernel_for(process: str, metric: str) -> Callable[..., np.ndarray] | None:
    """The compiled engine for ``(process, metric)``, or ``None`` when
    this backend has no kernel for the pair."""
    key = "cover" if metric in ("cover", "spread") else metric
    return KERNEL_ENGINES.get((process, key))


def lowerable(graph: GraphLike) -> bool:
    """Whether *graph* can feed the kernels: CSR always, an implicit
    oracle only while :func:`~repro.graphs.implicit.to_csr` agrees to
    materialise it (≤ 5M vertices) — above that the NumPy backend is
    the only batched path."""
    if isinstance(graph, Graph):
        return True
    oracle = as_oracle(graph)
    return isinstance(oracle, NeighborOracle) and oracle.n <= 5_000_000
