"""One front door for every registered process: ``simulate`` and
``run_batch``.

Before this facade each process family exposed a bespoke helper
(``cobra_cover_time``, ``walt_cover_time``, ``push_spread_time``, …)
with its own result dataclass, and every experiment hand-rolled its
own sweep loop.  Now::

    from repro import simulate, run_batch

    res = simulate(grid(32, 2), process="cobra", k=2, seed=0)
    print(res.cover_time)

    summary = run_batch(grid(32, 2), "cobra", trials=32, seed=0)
    print(summary.mean, summary.ci95_half_width)

``simulate`` drives any :class:`~repro.sim.processes.ProcessSpec` to a
single :class:`RunResult`; seed-for-seed it reproduces the legacy
per-process helper for the same ``(process, metric, seed)``.
``run_batch`` replaces the per-process ``*_trials`` helpers: it fans
out over the vectorized batched engine when the process has one for
the metric (cover/spread: every cover-capable registered process;
hit: cobra, simple, lazy), the sharded executor when ``shards`` is
given (per-trial seed streams, placement-independent — see
``docs/architecture.md``), a multiprocessing pool when
``processes > 1``, or a serial seed-spawned loop otherwise, always
returning one :class:`~repro.sim.montecarlo.TrialSummary`.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..graphs.base import Graph
from ..graphs.implicit import NeighborOracle
from ..obs.trace import current_tracer
from .montecarlo import TrialSummary, run_trials, summarize_trials
from .processes import ProcessSpec, get_process
from .rng import SeedLike

__all__ = [
    "RunResult",
    "simulate",
    "run_batch",
    "select_execution_path",
    "set_default_processes",
    "get_default_processes",
]

#: process-pool fan-out applied when ``run_batch(processes=None)``;
#: set from the CLI's ``--processes`` flag.
_DEFAULT_PROCESSES: int | None = None


def set_default_processes(processes: int | None) -> None:
    """Set the default Monte-Carlo fan-out for :func:`run_batch`.

    Parameters
    ----------
    processes : int or None
        ``None`` or 1 = serial/vectorized; > 1 = pool of that size.
    """
    global _DEFAULT_PROCESSES
    if processes is not None and processes < 1:
        raise ValueError("processes must be >= 1 (or None)")
    _DEFAULT_PROCESSES = processes


def get_default_processes() -> int | None:
    """Current default fan-out (see :func:`set_default_processes`).

    Returns
    -------
    int or None
        The installed pool width, or ``None`` for serial/vectorized.
    """
    return _DEFAULT_PROCESSES


@dataclass
class RunResult:
    """The one result schema every process run maps onto.

    Attributes
    ----------
    process : str
        Registry name of the process that ran.
    metric : str
        The metric that was driven.
    covered : bool
        Whether full coverage was reached within the budget (always
        ``False`` for metrics that don't track coverage).
    steps : int
        Steps/rounds executed.
    cover_time : int or None
        Step at which the last vertex was first activated, or ``None``.
    first_activation : numpy.ndarray or None
        ``int64[n]`` first-activation step per vertex (``-1`` = never),
        or ``None`` for processes that don't track visitation.
    extras : dict
        Process/metric-specific scalars (``hit_time``,
        ``coalescence_time``, ``population``, ``hit_cap``,
        ``walkers_left``, …).
    """

    process: str
    metric: str
    covered: bool
    steps: int
    cover_time: int | None
    first_activation: np.ndarray | None
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def value(self) -> float:
        """The metric's scalar outcome (``nan`` = budget exhausted);
        this is what :func:`run_batch` aggregates."""
        if self.metric in ("cover", "spread"):
            return float(self.cover_time) if self.cover_time is not None else float("nan")
        if self.metric == "hit":
            hit = self.extras.get("hit_time")
            return float(hit) if hit is not None else float("nan")
        if self.metric == "coalesce":
            ct = self.extras.get("coalescence_time")
            return float(ct) if ct is not None else float("nan")
        if self.metric == "min":
            mp = self.extras.get("min_position")
            return float(mp) if mp is not None else float("nan")
        raise ValueError(f"metric {self.metric!r} has no scalar value")

    def to_record(self) -> dict[str, Any]:
        """JSON-safe dict form of this result (the sweep-store schema).

        Numpy scalars collapse to Python numbers and the per-vertex
        ``first_activation`` array becomes a plain list (or ``None``),
        so ``json.dumps(res.to_record())`` round-trips; this is the
        serializer :mod:`repro.store` records ride on.

        Returns
        -------
        dict
            ``process``, ``metric``, ``covered``, ``steps``,
            ``cover_time``, ``value``, ``first_activation``, and the
            ``extras`` mapping with numpy scalars unwrapped.
        """

        def _plain(v: Any) -> Any:
            if isinstance(v, (np.bool_,)):
                return bool(v)
            if isinstance(v, np.integer):
                return int(v)
            if isinstance(v, np.floating):
                return float(v)
            if isinstance(v, np.ndarray):
                return v.tolist()
            return v

        return {
            "process": self.process,
            "metric": self.metric,
            "covered": bool(self.covered),
            "steps": int(self.steps),
            "cover_time": None if self.cover_time is None else int(self.cover_time),
            "value": float(self.value),
            "first_activation": (
                None
                if self.first_activation is None
                else self.first_activation.tolist()
            ),
            "extras": {k: _plain(v) for k, v in self.extras.items()},
        }


# ----------------------------------------------------------------------
# uniform views over the heterogeneous process classes
# ----------------------------------------------------------------------
def _first_activation(proc) -> np.ndarray | None:
    """First-activation array under either historical attribute name."""
    for attr in ("first_activation", "first_visit"):
        arr = getattr(proc, attr, None)
        if arr is not None:
            return arr
    return None


def _all_covered(proc) -> bool:
    flag = getattr(proc, "all_covered", None)
    if flag is None:
        raise TypeError(f"{type(proc).__name__} does not track coverage")
    return bool(flag)


def _collect_extras(proc) -> dict[str, Any]:
    extras: dict[str, Any] = {}
    for attr, cast in (
        ("population", int),
        ("hit_cap", bool),
        ("num_walkers", int),
        ("num_pebbles", int),
    ):
        value = getattr(proc, attr, None)
        if value is not None:
            extras[attr] = cast(value)
    return extras


def _resolve_metric(spec: ProcessSpec, metric: str | None) -> str:
    metric = metric or spec.default_metric
    # spread is the gossip flavor of cover; accept either where declared
    if not spec.supports(metric) and not (
        metric == "cover" and spec.supports("spread")
    ):
        known = sorted(spec.capabilities - {"multi_source"})
        raise ValueError(
            f"process {spec.name!r} does not support metric {metric!r}; "
            f"declared: {known}"
        )
    return metric


def select_execution_path(
    spec: ProcessSpec,
    metric: str,
    *,
    strategy: str = "auto",
    shards: int | None = None,
    processes: int | None = None,
    backend: str = "auto",
    graph: Any | None = None,
) -> str:
    """The execution path :func:`run_batch` takes for these arguments.

    This is the *single* strategy-selection rule: ``run_batch`` calls
    it to pick its path, and :mod:`repro.store.campaign` calls it to
    record truthful engine provenance — the two can't drift.

    Parameters
    ----------
    spec : ProcessSpec
        The resolved process spec.
    metric : str
        The resolved metric.
    strategy : str
        ``"auto"`` (default), ``"vectorized"``, or ``"serial"``.
    shards : int or None
        Sharded-executor request (wins over everything else).
    processes : int or None
        Effective pool width (the caller resolves the CLI default).
    backend : str
        Vectorized-engine backend: ``"auto"`` (default — the compiled
        numba kernels wherever available, NumPy otherwise),
        ``"numpy"``, or ``"numba"`` (raises :class:`RuntimeError` when
        numba is not installed, :class:`ValueError` when the pair has
        no kernel or the arguments select a non-vectorized path).
    graph : Graph or NeighborOracle, optional
        When given, ``backend="auto"`` falls back to NumPy for graphs
        the kernels cannot lower to CSR (implicit oracles above the
        ``to_csr`` ceiling) instead of failing later.

    Returns
    -------
    str
        ``"sharded"``, ``"vectorized"``, ``"vectorized[numba]"``,
        ``"pool"``, or ``"serial"``.
    """
    if backend not in ("auto", "numpy", "numba"):
        raise ValueError(f"unknown backend {backend!r}; use auto|numpy|numba")
    path = _select_strategy_path(
        spec, metric, strategy=strategy, shards=shards, processes=processes
    )
    if path != "vectorized" or backend == "numpy":
        if backend == "numba" and path != "vectorized":
            raise ValueError(
                "backend='numba' drives the vectorized engines only, but "
                f"these arguments select the {path!r} path; drop "
                "shards=/processes= or use strategy='vectorized'"
            )
        return path
    from . import kernels_numba

    kernel = kernels_numba.kernel_for(spec.name, metric)
    lowers = graph is None or kernels_numba.lowerable(graph)
    if backend == "numba":
        if not kernels_numba.NUMBA_AVAILABLE:
            raise RuntimeError(
                "backend='numba' requested but numba is not importable in "
                "this environment; install numba or use backend='auto' "
                "(which falls back to the NumPy engines)"
            )
        if kernel is None:
            raise ValueError(
                f"no compiled kernel for process {spec.name!r} with metric "
                f"{metric!r}; use backend='numpy' or backend='auto'"
            )
        if not lowers:
            raise ValueError(
                "the compiled backend lowers graphs to CSR, which this "
                "implicit oracle refuses at its vertex count; use "
                "backend='numpy'"
            )
        return "vectorized[numba]"
    if kernels_numba.NUMBA_AVAILABLE and kernel is not None and lowers:
        return "vectorized[numba]"
    return "vectorized"


def _select_strategy_path(
    spec: ProcessSpec,
    metric: str,
    *,
    strategy: str,
    shards: int | None,
    processes: int | None,
) -> str:
    """The backend-agnostic half of :func:`select_execution_path`:
    sharded / vectorized / pool / serial."""
    if shards is not None:
        return "sharded"
    if metric in ("cover", "spread"):
        engine = spec.batch_cover
    elif metric == "hit":
        engine = spec.batch_hit
    else:
        engine = None
    if strategy == "vectorized":
        if engine is None:
            raise ValueError(
                f"process {spec.name!r} has no vectorized engine for metric {metric!r}"
            )
        return "vectorized"
    if (
        strategy == "auto"
        and engine is not None
        and (processes is None or processes <= 1)
    ):
        return "vectorized"
    if processes is not None and processes > 1:
        return "pool"
    return "serial"


def _accepts_target(engine) -> bool:
    """Whether a batched engine's signature declares a ``target``
    keyword (drives forwarding for non-hit metrics)."""
    try:
        return "target" in inspect.signature(engine).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtin callables
        return False


# ----------------------------------------------------------------------
# the facade proper
# ----------------------------------------------------------------------
def simulate(
    graph: Graph,
    process: str | ProcessSpec = "cobra",
    *,
    metric: str | None = None,
    start: int | np.ndarray = 0,
    target: int | None = None,
    seed: SeedLike = None,
    max_steps: int | None = None,
    **params: Any,
) -> RunResult:
    """Run one trial of any registered process and normalise the
    outcome to a :class:`RunResult`.

    Parameters
    ----------
    graph : Graph
        The graph to run on.
    process : str or ProcessSpec
        Registry name (see :func:`repro.sim.processes.process_names`)
        or a :class:`ProcessSpec`.
    metric : str, optional
        ``"cover"``, ``"spread"``, ``"hit"``, ``"coalesce"``, or
        ``"min"`` (fixed-horizon branching-minima statistic); defaults
        to the spec's preferred metric.
    start : int or numpy.ndarray
        Start vertex (array for multi-source processes).
    target : int, optional
        Hit target, required for ``metric="hit"``.
    seed : SeedLike, optional
        RNG seed/stream.
    max_steps : int, optional
        Step budget; defaults to the process's legacy budget so seeded
        runs reproduce the historical helpers.
    **params : Any
        Process-specific knobs (``k``, ``delta``, ``walkers``,
        ``eps``, …) forwarded to the factory.

    Returns
    -------
    RunResult
        The normalised outcome of the single run.
    """
    if not isinstance(graph, Graph):
        raise TypeError(
            "simulate() drives the serial stepping classes, which walk CSR "
            "edge arrays; materialise the oracle with "
            "repro.graphs.to_csr(...) or use run_batch(strategy='vectorized')"
        )
    spec = process if isinstance(process, ProcessSpec) else get_process(process)
    metric = _resolve_metric(spec, metric)
    if metric == "hit":
        if target is None:
            raise ValueError("metric 'hit' needs a target vertex")
        if not (0 <= target < graph.n):
            raise ValueError("target out of range")
    if max_steps is None:
        max_steps = spec.default_budget(graph, params)
    proc = spec.factory(graph, start=start, seed=seed, target=target, **params)

    if metric in ("cover", "spread"):
        while not _all_covered(proc) and proc.t < max_steps:
            proc.step()
        covered = _all_covered(proc)
        fa = _first_activation(proc)
        cover_time = None
        if covered:
            cover_time = int(fa.max()) if fa is not None else int(proc.t)
        return RunResult(
            process=spec.name,
            metric=metric,
            covered=covered,
            steps=int(proc.t),
            cover_time=cover_time,
            first_activation=fa.copy() if fa is not None else None,
            extras=_collect_extras(proc),
        )

    if metric == "hit":
        while _first_activation(proc)[target] < 0 and proc.t < max_steps:
            proc.step()
        fa = _first_activation(proc)
        hit = int(fa[target]) if fa[target] >= 0 else None
        extras = _collect_extras(proc)
        extras["hit_time"] = hit
        covered = bool(getattr(proc, "all_covered", False))
        return RunResult(
            process=spec.name,
            metric=metric,
            covered=covered,
            steps=int(proc.t),
            cover_time=None,
            first_activation=fa.copy(),
            extras=extras,
        )

    if metric == "min":
        if not hasattr(proc, "min_position"):
            raise TypeError(
                f"{type(proc).__name__} does not track a minimum position"
            )
        while proc.t < max_steps:
            proc.step()
        extras = _collect_extras(proc)
        extras["min_position"] = int(proc.min_position)
        max_pos = getattr(proc, "max_position", None)
        if max_pos is not None:
            extras["max_position"] = int(max_pos)
        return RunResult(
            process=spec.name,
            metric=metric,
            covered=bool(getattr(proc, "all_covered", False)),
            steps=int(proc.t),
            cover_time=None,
            first_activation=None,
            extras=extras,
        )

    if metric == "coalesce":
        while proc.num_walkers > 1 and proc.t < max_steps:
            proc.step()
        coalesced = proc.num_walkers == 1
        fa = _first_activation(proc)
        extras = _collect_extras(proc)
        extras["coalesced"] = coalesced
        extras["walkers_left"] = int(proc.num_walkers)
        extras["coalescence_time"] = int(proc.t) if coalesced else None
        return RunResult(
            process=spec.name,
            metric=metric,
            covered=bool(getattr(proc, "all_covered", False)),
            steps=int(proc.t),
            cover_time=None,
            first_activation=fa.copy() if fa is not None else None,
            extras=extras,
        )

    raise ValueError(f"unknown metric {metric!r}")


def _batch_trial(
    seed,
    graph: Graph,
    process: str | ProcessSpec,
    metric: str,
    start,
    target,
    max_steps,
    params: dict | None = None,
) -> float:
    """Picklable per-trial worker for serial/pool fan-out.

    Parameters
    ----------
    seed : SeedLike, optional
        The trial's own spawned :class:`numpy.random.SeedSequence`.
    graph, process, metric, start, target, max_steps, params:
        Static :func:`simulate` arguments shared by every trial.

    Returns
    -------
    float
        The trial's scalar metric value (``nan`` = budget exhausted).
    """
    return simulate(
        graph,
        process,
        metric=metric,
        start=start,
        target=target,
        seed=seed,
        max_steps=max_steps,
        **(params or {}),
    ).value


def _shard_worker(payload: tuple) -> list[float]:
    """Picklable per-shard worker: run one contiguous block of trials.

    Parameters
    ----------
    payload : tuple
        ``(seeds, graph, proc_ref, metric, start, target, max_steps,
        params)`` — *seeds* is the shard's slice of the per-trial
        spawned seed list; everything else is static.

    Returns
    -------
    list of float
        One metric value per trial of the shard, in trial order.
    """
    seeds, graph, proc_ref, metric, start, target, max_steps, params = payload
    return [
        _batch_trial(s, graph, proc_ref, metric, start, target, max_steps, params)
        for s in seeds
    ]


def _run_sharded(
    graph: Graph,
    proc_ref,
    metric: str,
    *,
    trials: int,
    start,
    target,
    seed: SeedLike,
    max_steps,
    params: dict,
    shards: int,
    max_workers: int | None,
) -> TrialSummary:
    """Sharded Monte-Carlo executor behind ``run_batch(shards=...)``.

    The seed-spawning contract makes results placement-independent:
    all *trials* per-trial seeds are spawned up front from *seed*
    (exactly as the serial/pool paths spawn them), and shard ``j``
    merely executes a contiguous slice of that list.  Trial ``i``
    therefore consumes the identical RNG stream whether it runs
    unsharded, in shard 0 of 1, or in shard 7 of 8 on another machine
    — ``shards=k`` is seed-for-seed identical to ``shards=1`` and to
    the unsharded serial path for every registered process.

    Parameters
    ----------
    graph, proc_ref, metric, start, target, max_steps, params:
        Static per-trial arguments (see :func:`_batch_trial`).
    trials : int
        Total trial count, split round-robin-free into ``shards``
        contiguous blocks of near-equal size.
    seed : SeedLike, optional
        Parent seed for :func:`repro.sim.rng.spawn_seeds`.
    shards : int or None
        Number of blocks.
    max_workers : int or None
        Process-pool width (defaults to ``min(shards, cpu_count)``);
        ``1`` executes every shard inline in this process.

    Returns
    -------
    TrialSummary
        Summary over all trials, in trial order.
    """
    import os

    from .rng import spawn_seeds

    seeds = spawn_seeds(seed, trials)
    bounds = np.linspace(0, trials, shards + 1).astype(int)
    payloads = [
        (seeds[lo:hi], graph, proc_ref, metric, start, target, max_steps, params)
        for lo, hi in zip(bounds[:-1], bounds[1:])
        if hi > lo
    ]
    if max_workers is None:
        max_workers = min(len(payloads), os.cpu_count() or 1)
    if max_workers <= 1 or len(payloads) == 1:
        chunks = [_shard_worker(p) for p in payloads]
    else:
        from .montecarlo import _pool_context

        with _pool_context().Pool(processes=max_workers) as pool:
            chunks = pool.map(_shard_worker, payloads)
    values = np.array([v for chunk in chunks for v in chunk], dtype=np.float64)
    return summarize_trials(values)


def run_batch(
    graph: Graph | NeighborOracle,
    process: str | ProcessSpec = "cobra",
    *,
    trials: int = 32,
    metric: str | None = None,
    start: int | np.ndarray = 0,
    target: int | None = None,
    seed: SeedLike = None,
    max_steps: int | None = None,
    processes: int | None = None,
    shards: int | None = None,
    max_workers: int | None = None,
    strategy: str = "auto",
    backend: str = "auto",
    **params: Any,
) -> TrialSummary:
    """Run *trials* independent trials and summarise the outcomes.

    Strategy selection (``strategy="auto"``):

    * the sharded executor when ``shards`` is given (see below);
    * the process's vectorized batched engine, when it has one for the
      metric — ``batch_cover`` for coverage/spread, ``batch_hit`` for
      hitting — all trials advance in one ``(trials, n)`` frontier, no
      per-trial Python loops;
    * a :mod:`multiprocessing` pool when ``processes > 1`` (or a CLI
      default was installed via :func:`set_default_processes`);
    * otherwise a serial loop over spawned per-trial seeds, which is
      seed-for-seed identical to the legacy ``*_trials`` helpers.

    ``strategy="vectorized"`` / ``"serial"`` force a path (vectorized
    raises for processes without a batched engine for the metric).

    Parameters
    ----------
    graph : Graph or NeighborOracle
        The graph to run on — a CSR :class:`Graph`, or an implicit
        :class:`~repro.graphs.implicit.NeighborOracle` (vectorized
        path only: the serial/pool/sharded paths step CSR edge arrays).
    process : str or ProcessSpec
        Registry name or a :class:`~repro.sim.processes.ProcessSpec`.
    trials : int
        Number of independent trials.
    metric : str, optional
        ``"cover"``, ``"spread"``, ``"hit"``, ``"coalesce"``, or
        ``"min"``; defaults to the spec's preferred metric.
    start : int or numpy.ndarray
        Start vertex (array for multi-source processes).
    target : int, optional
        Hit target, required for ``metric="hit"`` (validated before
        any fan-out).
    seed : SeedLike, optional
        The single root seed all per-trial (or engine) streams derive
        from.
    max_steps : int, optional
        Step budget per trial; defaults to the process's legacy budget.
    processes : int or None
        Pool width for the per-trial multiprocessing path (``None``/1
        = no pool).  Mutually exclusive with *shards*.
    shards : int or None
        Split the trials into this many contiguous blocks and run them
        on the sharded executor.  Per-trial seeds are spawned up front,
        so results are **placement-independent**: ``shards=k`` is
        seed-for-seed identical to ``shards=1``, to the unsharded
        serial path, and to any ``max_workers`` — the contract that
        lets shards move across worker processes or machines.  Sharded
        runs use per-trial streams (the serial contract), not the
        single interleaved stream of the vectorized engines; force
        ``strategy="vectorized"`` only without shards.
    max_workers : int or None
        Process-pool width for the sharded executor (default
        ``min(shards, cpu_count)``; ``1`` = inline, same values).
    strategy : str
        ``"auto"`` (default), ``"vectorized"``, or ``"serial"``.
    backend : str
        Vectorized-engine backend — ``"auto"`` (default), ``"numpy"``,
        or ``"numba"``.  ``"auto"`` takes the compiled numba kernels
        whenever numba is importable, the process/metric pair has one,
        and the graph lowers to CSR; it falls back to the NumPy
        engines otherwise.  ``"numba"`` forces the compiled kernels
        (clear error when unavailable); the compiled engines are
        bit-exact twins of the NumPy ones, so values never depend on
        the backend.
    **params : Any
        Process-specific knobs forwarded to the factory/engine.

    Returns
    -------
    TrialSummary
        One summary over the metric values of all trials.
    """
    spec = process if isinstance(process, ProcessSpec) else get_process(process)
    metric = _resolve_metric(spec, metric)
    if trials < 1:
        raise ValueError("need at least one trial")
    if strategy not in ("auto", "vectorized", "serial"):
        raise ValueError(f"unknown strategy {strategy!r}; use auto|vectorized|serial")
    if shards is not None:
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if processes is not None:
            raise ValueError(
                "pass either shards= (sharded executor) or processes= "
                "(per-trial pool), not both"
            )
        if strategy == "vectorized":
            raise ValueError(
                "sharded runs use the per-trial seed-spawning contract; "
                "strategy='vectorized' cannot be sharded (drop shards= for "
                "the single-stream vectorized engine)"
            )
    if max_workers is not None:
        if shards is None:
            raise ValueError("max_workers only applies to sharded runs (pass shards=)")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
    if metric == "hit":
        # validate here, before any fan-out: a bad target must fail fast
        # in the caller, not deep inside pool workers
        if target is None:
            raise ValueError("metric 'hit' needs a target vertex")
        if not (0 <= target < graph.n):
            raise ValueError("target out of range")
    if processes is None and shards is None:
        processes = _DEFAULT_PROCESSES
    if max_steps is None:
        max_steps = spec.default_budget(graph, params)

    # registered specs travel by name (cheap to pickle across a pool);
    # an unregistered spec is passed as the object itself — fine
    # serially, and the pool path then needs the spec to be picklable
    from .processes import _REGISTRY

    proc_ref: str | ProcessSpec = (
        spec.name if _REGISTRY.get(spec.name) is spec else spec
    )

    path = select_execution_path(
        spec,
        metric,
        strategy=strategy,
        shards=shards,
        processes=processes,
        backend=backend,
        graph=graph,
    )
    tracer = current_tracer()
    if tracer.enabled:
        tracer.annotate(
            engine_path=path, process=spec.name, metric=metric, trials=trials
        )
    if not path.startswith("vectorized") and not isinstance(graph, Graph):
        raise ValueError(
            f"the {path!r} execution path steps CSR edge arrays, which an "
            "implicit NeighborOracle does not carry; use "
            "strategy='vectorized' (drop shards=/processes=) or materialise "
            "the graph with repro.graphs.to_csr(...)"
        )
    if path == "sharded":
        return _run_sharded(
            graph,
            proc_ref,
            metric,
            trials=trials,
            start=start,
            target=target,
            seed=seed,
            max_steps=max_steps,
            params=dict(params),
            shards=shards,
            max_workers=max_workers,
        )

    if path.startswith("vectorized"):
        if path == "vectorized[numba]":
            from . import kernels_numba

            engine = kernels_numba.kernel_for(spec.name, metric)
        else:
            engine = (
                spec.batch_cover if metric in ("cover", "spread") else spec.batch_hit
            )
        kwargs = dict(params)
        if metric == "hit":
            kwargs["target"] = target
        elif target is not None and _accepts_target(engine):
            # cover engines of target-parameterised processes (the
            # biased walk's controller steers toward its target)
            kwargs["target"] = target
        values = engine(
            graph, trials=trials, start=start, seed=seed, max_steps=max_steps, **kwargs
        )
        return summarize_trials(np.asarray(values, dtype=np.float64))

    return run_trials(
        _batch_trial,
        trials,
        seed=seed,
        args=(graph, proc_ref, metric, start, target, max_steps),
        kwargs={"params": dict(params)},
        processes=processes,
    )
