"""Simulation harness: RNG streams, stepping engine, the process
registry, the ``simulate``/``run_batch`` facade, and Monte-Carlo
trials."""

from .batch import (
    batched_biased_cover_trials,
    batched_branching_cover_trials,
    batched_coalescing_cover_trials,
    batched_cobra_active_sizes,
    batched_cobra_cover_trials,
    batched_cobra_hit_trials,
    batched_gossip_hit_trials,
    batched_gossip_spread_trials,
    batched_lazy_cover_trials,
    batched_lazy_hit_trials,
    batched_parallel_walks_cover_trials,
    batched_walt_cover_trials,
    batched_walt_hit_trials,
    batched_walt_positions_at,
)
from .engine import SteppingProcess, run_process
from .facade import (
    RunResult,
    get_default_processes,
    run_batch,
    set_default_processes,
    simulate,
)
from .montecarlo import TrialSummary, run_trials, summarize_trials
from .processes import (
    ProcessSpec,
    all_processes,
    get_process,
    process_names,
    register_process,
)
from .record import CoverageCurve, coverage_curve, time_to_cover_fraction
from .rng import (
    SeedLike,
    random_choice_weighted,
    resolve_rng,
    resolve_seed_sequence,
    spawn_rngs,
    spawn_seeds,
)

__all__ = [
    "SteppingProcess",
    "run_process",
    "ProcessSpec",
    "register_process",
    "get_process",
    "all_processes",
    "process_names",
    "RunResult",
    "simulate",
    "run_batch",
    "set_default_processes",
    "get_default_processes",
    "batched_biased_cover_trials",
    "batched_branching_cover_trials",
    "batched_coalescing_cover_trials",
    "batched_cobra_active_sizes",
    "batched_cobra_cover_trials",
    "batched_cobra_hit_trials",
    "batched_gossip_hit_trials",
    "batched_gossip_spread_trials",
    "batched_lazy_cover_trials",
    "batched_lazy_hit_trials",
    "batched_parallel_walks_cover_trials",
    "batched_walt_cover_trials",
    "batched_walt_hit_trials",
    "batched_walt_positions_at",
    "TrialSummary",
    "run_trials",
    "summarize_trials",
    "CoverageCurve",
    "coverage_curve",
    "time_to_cover_fraction",
    "SeedLike",
    "random_choice_weighted",
    "resolve_rng",
    "resolve_seed_sequence",
    "spawn_rngs",
    "spawn_seeds",
]
