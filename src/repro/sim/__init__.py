"""Simulation harness: RNG streams, stepping engine, Monte-Carlo trials."""

from .engine import SteppingProcess, run_process
from .montecarlo import TrialSummary, run_trials, summarize_trials
from .record import CoverageCurve, coverage_curve, time_to_cover_fraction
from .rng import (
    SeedLike,
    random_choice_weighted,
    resolve_rng,
    resolve_seed_sequence,
    spawn_rngs,
    spawn_seeds,
)

__all__ = [
    "SteppingProcess",
    "run_process",
    "TrialSummary",
    "run_trials",
    "summarize_trials",
    "CoverageCurve",
    "coverage_curve",
    "time_to_cover_fraction",
    "SeedLike",
    "random_choice_weighted",
    "resolve_rng",
    "resolve_seed_sequence",
    "spawn_rngs",
    "spawn_seeds",
]
