"""Extensions the paper names but does not pursue (§1):

    "One could further study variations where the branching varied
     based on the vertex or the time step, or was governed by a
     random distribution; we do not do that here."

:class:`GeneralizedCobraWalk` implements exactly those variations via a
*branching schedule* — any of:

* an ``int`` (the paper's fixed-k walk);
* :class:`RandomBranching` — i.i.d. per-pebble branching counts from a
  given distribution (e.g. ``{1: 0.5, 2: 0.5}`` models an infection
  that spreads to a second contact only half the time); the *expected*
  branching factor is the natural knob;
* :class:`DegreeProportionalBranching` — per-vertex ``k(v)`` given by a
  callable (e.g. branch more from hubs);
* any callable ``(t, vertices, rng) -> int64 array`` of per-vertex
  counts — time- and state-dependent schedules.

The walk reduces exactly to :class:`~repro.core.cobra.CobraWalk` for a
constant schedule (tested), and the ``EXT`` test suite probes the
natural conjecture the paper's remark raises: expected branching
``E[k] > 1`` already recovers fast coverage on expanders, with cover
time degrading smoothly as ``E[k] → 1`` (the random-walk limit).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Mapping

import numpy as np

from ..graphs.base import Graph, sample_uniform_neighbors
from ..sim.rng import SeedLike, resolve_rng

__all__ = [
    "RandomBranching",
    "DegreeProportionalBranching",
    "GeneralizedCobraWalk",
    "generalized_cobra_cover_time",
]


@dataclass(frozen=True)
class RandomBranching:
    """I.i.d. branching counts: each active vertex independently draws
    its branching factor from ``distribution`` (a ``{k: prob}`` map)."""

    distribution: Mapping[int, float]

    def __post_init__(self) -> None:
        ks = np.array(sorted(self.distribution), dtype=np.int64)
        ps = np.array([self.distribution[int(k)] for k in ks], dtype=np.float64)
        if ks.size == 0:
            raise ValueError("distribution must be non-empty")
        if ks.min() < 1:
            raise ValueError("branching counts must be >= 1 (0 would kill pebbles)")
        if ps.min() < 0 or abs(ps.sum() - 1.0) > 1e-9:
            raise ValueError("probabilities must be non-negative and sum to 1")
        object.__setattr__(self, "_ks", ks)
        object.__setattr__(self, "_cdf", np.cumsum(ps))

    @property
    def mean(self) -> float:
        """Expected branching factor ``E[k]``."""
        ks = self._ks  # type: ignore[attr-defined]
        cdf = self._cdf  # type: ignore[attr-defined]
        ps = np.diff(np.concatenate([[0.0], cdf]))
        return float((ks * ps).sum())

    def __call__(self, t: int, vertices: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        u = rng.random(vertices.size)
        idx = np.searchsorted(self._cdf, u, side="right")  # type: ignore[attr-defined]
        idx = np.minimum(idx, len(self._ks) - 1)  # type: ignore[attr-defined]
        return self._ks[idx]  # type: ignore[attr-defined]


@dataclass(frozen=True)
class DegreeProportionalBranching:
    """Vertex-dependent branching ``k(v) = fn(d(v))`` (deterministic)."""

    graph: Graph
    fn: Callable[[np.ndarray], np.ndarray]

    def __call__(self, t: int, vertices: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        ks = np.asarray(self.fn(self.graph.degrees[vertices]), dtype=np.int64)
        if ks.shape != vertices.shape:
            raise ValueError("branching fn must return one count per vertex")
        if ks.size and ks.min() < 1:
            raise ValueError("branching counts must be >= 1")
        return ks


BranchingSchedule = Callable[[int, np.ndarray, np.random.Generator], np.ndarray]


class GeneralizedCobraWalk:
    """Cobra walk with a per-step, per-vertex branching schedule.

    Semantics match the paper's definition with ``k`` replaced by the
    schedule's output: active vertex ``v`` at step ``t`` samples
    ``k_t(v)`` uniform neighbors with replacement.
    """

    def __init__(
        self,
        graph: Graph,
        schedule: int | BranchingSchedule,
        *,
        start: int | np.ndarray = 0,
        seed: SeedLike = None,
    ) -> None:
        self.graph = graph
        if isinstance(schedule, (int, np.integer)):
            if schedule < 1:
                raise ValueError("constant branching factor must be >= 1")
            k = int(schedule)
            self.schedule: BranchingSchedule = lambda t, verts, rng: np.full(
                verts.size, k, dtype=np.int64
            )
        else:
            self.schedule = schedule
        self.rng = resolve_rng(seed)
        start_arr = np.unique(np.atleast_1d(np.asarray(start, dtype=np.int64)))
        if start_arr.size == 0:
            raise ValueError("need at least one start vertex")
        if start_arr.min() < 0 or start_arr.max() >= graph.n:
            raise ValueError("start vertex out of range")
        self.active = start_arr
        self.t = 0
        self.first_activation = np.full(graph.n, -1, dtype=np.int64)
        self.first_activation[self.active] = 0
        self._num_covered = int(self.active.size)
        self._scratch = np.zeros(graph.n, dtype=bool)

    @property
    def num_covered(self) -> int:
        return self._num_covered

    @property
    def all_covered(self) -> bool:
        return self._num_covered == self.graph.n

    def step(self) -> np.ndarray:
        """One generalized cobra step."""
        ks = np.asarray(
            self.schedule(self.t, self.active, self.rng), dtype=np.int64
        )
        if ks.shape != self.active.shape:
            raise ValueError("schedule must return one branching count per active vertex")
        if ks.size and ks.min() < 1:
            raise ValueError("branching counts must be >= 1")
        reps = np.repeat(self.active, ks)
        picks = sample_uniform_neighbors(self.graph, reps, self.rng)
        if picks.size >= self.graph.n // 16:
            self._scratch[:] = False
            self._scratch[picks] = True
            self.active = np.flatnonzero(self._scratch)
        else:
            self.active = np.unique(picks)
        self.t += 1
        fresh = self.active[self.first_activation[self.active] < 0]
        if fresh.size:
            self.first_activation[fresh] = self.t
            self._num_covered += int(fresh.size)
        return self.active

    def run_until_cover(self, max_steps: int) -> int | None:
        """Cover time, or ``None`` on budget exhaustion."""
        while not self.all_covered and self.t < max_steps:
            self.step()
        return int(self.first_activation.max()) if self.all_covered else None


def generalized_cobra_cover_time(
    graph: Graph,
    schedule: int | BranchingSchedule,
    *,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> int | None:
    """Run one generalized cobra walk to coverage."""
    if max_steps is None:
        max_steps = max(20_000, 600 * graph.n)
    walk = GeneralizedCobraWalk(graph, schedule, start=start, seed=seed)
    return walk.run_until_cover(max_steps)
