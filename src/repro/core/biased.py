"""Biased random walks (paper Section 5.1).

An *ε-biased walk* (Azar et al. [5]) moves to a uniform neighbor with
probability ``1 − ε`` and lets a memoryless controller pick the
neighbor with probability ``ε``.  The paper's new variant is the
*inverse-degree-biased walk*: at vertex ``v ≠ target`` the controller
probability is ``1/d(v)``; at the target the walk is unbiased.

Provided here:

* simulators for both walks with pluggable controllers;
* the shortest-path controller (optimal-ish for hitting a target);
* exact hitting/return times by linear solve for any chain;
* Theorem 13's stationary lower bound for ε-biased walks;
* σ̂ path products (exact via Dijkstra in log space), Lemma 18's
  ``e^{−p(x,v)}`` upper bound, Lemma 16's Metropolis chain, and
  Corollary 17's return-time bound;
* Lemma 14's dominance-side transition kernel (the coupling
  inequality the cobra bound rests on).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..graphs.base import Graph
from ..graphs.checks import bfs_distances
from ..sim.rng import SeedLike, resolve_rng

__all__ = [
    "BiasedWalk",
    "toward_target_controller",
    "epsilon_biased_transition",
    "inverse_degree_biased_transition",
    "simulate_biased_hit",
    "exact_hitting_times",
    "exact_return_time",
    "stationary_lower_bound_thm13",
    "sigma_hat_exact",
    "sigma_hat_lemma18_bound",
    "metropolis_chain_lemma16",
    "return_time_bound_cor17",
    "MetropolisChain",
]


def toward_target_controller(graph: Graph, target: int) -> np.ndarray:
    """Controller table: at each vertex, the neighbor one BFS hop
    closer to *target* (the target maps to itself)."""
    dist = bfs_distances(graph, target)
    if (dist < 0).any():
        raise ValueError("controller needs a connected graph")
    choice = np.empty(graph.n, dtype=np.int64)
    choice[target] = target
    for v in range(graph.n):
        if v == target:
            continue
        nbrs = graph.neighbors(v)
        closer = nbrs[dist[nbrs] == dist[v] - 1]
        choice[v] = closer[0]
    return choice


def epsilon_biased_transition(
    graph: Graph, controller: np.ndarray, eps: float
) -> np.ndarray:
    """Dense transition matrix of the ε-biased walk under *controller*.

    ``P(v, ·) = (1 − ε)·uniform(N(v)) + ε·δ_{controller[v]}``.
    """
    if not 0.0 <= eps <= 1.0:
        raise ValueError("eps must be in [0, 1]")
    n = graph.n
    p = np.zeros((n, n))
    for v in range(n):
        nbrs = graph.neighbors(v)
        p[v, nbrs] += (1.0 - eps) / nbrs.size
        p[v, controller[v]] += eps
    return p


def inverse_degree_biased_transition(
    graph: Graph, target: int, controller: np.ndarray | None = None
) -> np.ndarray:
    """Dense transition matrix of the inverse-degree-biased walk with
    the given *target* (bias ``1/d(v)`` everywhere except the target,
    which steps uniformly).  Default controller: toward-target BFS."""
    if controller is None:
        controller = toward_target_controller(graph, target)
    n = graph.n
    p = np.zeros((n, n))
    for v in range(n):
        nbrs = graph.neighbors(v)
        d = nbrs.size
        if v == target:
            p[v, nbrs] += 1.0 / d
        else:
            p[v, nbrs] += (1.0 - 1.0 / d) / d
            p[v, controller[v]] += 1.0 / d
    return p


class BiasedWalk:
    """Stepping ε-/inverse-degree-biased walk steering toward *target*.

    ``eps=None`` selects the inverse-degree bias ``1/d(v)``; a float
    selects the constant ε-bias.  The default controller is the
    toward-target BFS table.  Registered as ``"biased"`` in
    :mod:`repro.sim.processes`; :func:`simulate_biased_hit` keeps the
    historical signature and drives it.
    """

    def __init__(
        self,
        graph: Graph,
        target: int,
        *,
        start: int = 0,
        eps: float | None = None,
        controller: np.ndarray | None = None,
        seed: SeedLike = None,
    ) -> None:
        if not (0 <= target < graph.n):
            raise ValueError("target out of range")
        if not (0 <= start < graph.n):
            raise ValueError("start out of range")
        if eps is not None and not 0.0 <= eps <= 1.0:
            raise ValueError("eps must be in [0, 1]")
        self.graph = graph
        self.target = int(target)
        self.eps = eps
        self.rng = resolve_rng(seed)
        if controller is None:
            controller = toward_target_controller(graph, target)
        self.controller = controller
        self.position = int(start)
        self.t = 0
        self.first_visit = np.full(graph.n, -1, dtype=np.int64)
        self.first_visit[start] = 0
        self._num_covered = 1

    @property
    def num_covered(self) -> int:
        return self._num_covered

    @property
    def all_covered(self) -> bool:
        return self._num_covered == self.graph.n

    def step(self) -> int:
        """One biased move; returns the new position."""
        self.t += 1
        v = self.position
        d = self.graph.degree(v)
        bias = (1.0 / d) if self.eps is None else self.eps
        if self.rng.random() < bias:
            v = int(self.controller[v])
        else:
            nbrs = self.graph.neighbors(v)
            v = int(nbrs[int(self.rng.random() * d)])
        self.position = v
        if self.first_visit[v] < 0:
            self.first_visit[v] = self.t
            self._num_covered += 1
        return v


def simulate_biased_hit(
    graph: Graph,
    target: int,
    *,
    start: int = 0,
    eps: float | None = None,
    controller: np.ndarray | None = None,
    seed: SeedLike = None,
    max_steps: int = 10_000_000,
) -> int | None:
    """Simulate one biased walk until it hits *target*.

    Returns the hitting step or ``None`` on budget exhaustion.
    """
    walk = BiasedWalk(
        graph, target, start=start, eps=eps, controller=controller, seed=seed
    )
    while walk.first_visit[target] < 0 and walk.t < max_steps:
        walk.step()
    hit = walk.first_visit[target]
    return int(hit) if hit >= 0 else None


def exact_hitting_times(p: np.ndarray, target: int) -> np.ndarray:
    """Expected hitting times ``h(v → target)`` for a finite chain by
    solving ``(I − Q) h = 1`` on the non-target states."""
    n = p.shape[0]
    idx = np.array([i for i in range(n) if i != target])
    q = p[np.ix_(idx, idx)]
    h = np.linalg.solve(np.eye(n - 1) - q, np.ones(n - 1))
    out = np.zeros(n)
    out[idx] = h
    return out


def exact_return_time(p: np.ndarray, v: int) -> float:
    """Expected return time to *v*: ``1 + Σ_y P(v,y) h(y → v)``."""
    h = exact_hitting_times(p, v)
    return float(1.0 + p[v] @ h)


def stationary_lower_bound_thm13(graph: Graph, targets: list[int], eps: float) -> float:
    """Theorem 13 (Azar et al.): a controller exists making the
    stationary mass of set ``S`` at least
    ``Σ_{v∈S} d(v) / (Σ_{v∈S} d(v) + Σ_{x∉S} β^{Δ(x,S)−1} d(x))`` with
    ``β = 1 − ε``."""
    if not targets:
        raise ValueError("target set must be non-empty")
    if not 0.0 < eps <= 1.0:
        raise ValueError("eps must be in (0, 1]")
    beta = 1.0 - eps
    dist = np.full(graph.n, np.iinfo(np.int64).max, dtype=np.int64)
    for v in targets:
        dist = np.minimum(dist, bfs_distances(graph, v))
    in_s = np.zeros(graph.n, dtype=bool)
    in_s[targets] = True
    deg = graph.degrees.astype(np.float64)
    s_vol = deg[in_s].sum()
    outside = ~in_s
    decay = beta ** np.maximum(dist[outside] - 1, 0)
    return float(s_vol / (s_vol + (decay * deg[outside]).sum()))


def sigma_hat_exact(graph: Graph, target: int) -> np.ndarray:
    """``σ̂(x, target) = max over x→target paths of Π_{y∈path}(1 − 1/d(y))``.

    Maximising the product equals minimising ``Σ −log(1 − 1/d(y))``
    over path vertices (endpoints included), a vertex-weighted Dijkstra.
    Degree-1 vertices contribute a zero factor (``−log 0 = ∞``), which
    the arithmetic handles naturally.  ``σ̂(target, target)`` is the
    single-vertex path product ``1 − 1/d(target)``.
    """
    deg = graph.degrees.astype(np.float64)
    with np.errstate(divide="ignore"):
        w = -np.log1p(-1.0 / deg)  # -log(1 - 1/d), inf when d == 1
    cost = np.full(graph.n, np.inf)
    cost[target] = w[target]
    heap = [(cost[target], target)]
    while heap:
        c, u = heapq.heappop(heap)
        if c > cost[u]:
            continue
        for v in graph.neighbors(u):
            nc = c + w[v]
            if nc < cost[v]:
                cost[v] = nc
                heapq.heappush(heap, (nc, int(v)))
    return np.exp(-cost)


def sigma_hat_lemma18_bound(graph: Graph, target: int) -> np.ndarray:
    """Lemma 18: ``σ̂(x, v) ≤ e^{−p(x, v)}`` with ``p`` the
    inverse-degree-weighted shortest path distance."""
    from ..graphs.checks import weighted_inverse_degree_distance

    return np.exp(-weighted_inverse_degree_distance(graph, target))


@dataclass(frozen=True)
class MetropolisChain:
    """Lemma 16's construction.

    ``target_pi`` is the distribution the Metropolis chain is built
    for; ``m`` is the Metropolis matrix (with self-loops); ``p`` is the
    derived self-loop-free chain, which Lemma 16 proves is a valid
    inverse-degree-biased walk (``P(x, y) ≥ (1 − 1/d(x))/d(x)``)."""

    target_pi: np.ndarray
    m: np.ndarray
    p: np.ndarray


def metropolis_chain_lemma16(graph: Graph, targets: list[int]) -> MetropolisChain:
    """Build Lemma 16's Metropolis chain for target set ``S``.

    ``π_M(v) = γ·d(v)`` on ``S`` and ``γ·σ̂(x, S)·d(x)`` off it, where
    ``σ̂(x, S) = min_{v∈S} σ̂(x, v)``.

    Degree-1 vertices have ``σ̂ = 0`` (their path factor ``1 − 1/d`` is
    zero), which would put zero stationary mass on them and break the
    Metropolis ratio; we floor ``σ̂`` at a tiny positive value, which
    leaves every tested quantity unchanged to machine precision.
    """
    if not targets:
        raise ValueError("target set must be non-empty")
    sigma = np.min(np.stack([sigma_hat_exact(graph, v) for v in targets]), axis=0)
    sigma = np.maximum(sigma, 1e-280)
    deg = graph.degrees.astype(np.float64)
    weights = sigma * deg
    weights[np.asarray(targets)] = deg[np.asarray(targets)]
    pi = weights / weights.sum()
    n = graph.n
    m = np.zeros((n, n))
    for x in range(n):
        for y in graph.neighbors(x):
            # Metropolis with uniform-neighbor proposal
            m[x, y] = min(1.0 / deg[x], pi[y] / (pi[x] * deg[y]))
        m[x, x] = 1.0 - m[x].sum()
    p = m.copy()
    np.fill_diagonal(p, 0.0)
    rows = p.sum(axis=1)
    p /= rows[:, None]
    return MetropolisChain(target_pi=pi, m=m, p=p)


def return_time_bound_cor17(graph: Graph, v: int) -> float:
    """Corollary 17: some inverse-degree-biased walk returns to ``v``
    within ``(d(v) + Σ_{x≠v} σ̂(x,v)·d(x)) / d(v)`` expected steps."""
    sigma = sigma_hat_exact(graph, v)
    deg = graph.degrees.astype(np.float64)
    mask = np.ones(graph.n, dtype=bool)
    mask[v] = False
    return float((deg[v] + (sigma[mask] * deg[mask]).sum()) / deg[v])
