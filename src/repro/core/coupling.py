"""Stochastic-dominance checks (paper Lemmas 10 and 14).

Lemma 10: from the same start set, the Walt cover time stochastically
dominates the cobra cover time.  Lemma 14: the cobra hitting time is
dominated by the optimal inverse-degree-biased walk's hitting time.

True statewise couplings are proof devices; what we can *measure* is
the distributional consequence — ``Pr[τ_cobra > t] ≤ Pr[τ_walt > t]``
for all ``t`` — which :func:`stochastic_dominance_fraction` scores
from paired trial samples via empirical survival curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.base import Graph
from ..sim.rng import SeedLike, spawn_seeds

__all__ = [
    "stochastic_dominance_fraction",
    "DominanceReport",
    "walt_dominates_cobra_report",
]


def stochastic_dominance_fraction(
    lower: np.ndarray, upper: np.ndarray, *, grid: int = 200
) -> float:
    """Fraction of checkpoints where the empirical survival function of
    *upper* is ≥ that of *lower* (1.0 = perfect empirical dominance).

    Checkpoints are *grid* evenly spaced quantile levels of the pooled
    sample.  Sampling noise can dip individual checkpoints, so callers
    assert the fraction is near 1 rather than exactly 1.
    """
    lower = np.asarray(lower, dtype=np.float64)
    upper = np.asarray(upper, dtype=np.float64)
    lower = lower[~np.isnan(lower)]
    upper = upper[~np.isnan(upper)]
    if lower.size == 0 or upper.size == 0:
        raise ValueError("need non-empty samples")
    pooled = np.concatenate([lower, upper])
    checkpoints = np.quantile(pooled, np.linspace(0.02, 0.98, grid))
    surv_lower = np.array([(lower > t).mean() for t in checkpoints])
    surv_upper = np.array([(upper > t).mean() for t in checkpoints])
    return float((surv_upper >= surv_lower - 1e-12).mean())


@dataclass(frozen=True)
class DominanceReport:
    """Lemma 10 empirical comparison on one graph."""

    graph_name: str
    cobra_mean: float
    walt_mean: float
    dominance_fraction: float
    trials: int

    @property
    def consistent_with_lemma10(self) -> bool:
        """Means ordered correctly and survival curves nearly nested."""
        return self.walt_mean >= self.cobra_mean * 0.95 and self.dominance_fraction >= 0.8


def walt_dominates_cobra_report(
    graph: Graph,
    *,
    start: int = 0,
    delta: float = 0.5,
    trials: int = 30,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> DominanceReport:
    """Run paired cobra and Walt cover trials from the same start vertex
    (all Walt pebbles on it, per the paper's Theorem 8 setup) and score
    empirical dominance.

    Note the direction: Walt's cover time is the *larger* one — that is
    exactly why an upper bound proved for Walt transfers to the cobra
    walk.

    Both processes run their trials on the vectorized batched cover
    engines (one flat frontier each) via
    :func:`repro.sim.facade.run_batch`.
    """
    from ..sim.facade import run_batch

    cobra_seeds, walt_seeds = spawn_seeds(seed, 2)
    cobra_times = run_batch(
        graph, "cobra", trials=trials, start=start, seed=cobra_seeds,
        max_steps=max_steps,
    ).values
    walt_times = run_batch(
        graph, "walt", trials=trials, start=start, seed=walt_seeds,
        max_steps=max_steps, delta=delta,
    ).values
    return DominanceReport(
        graph_name=graph.name,
        cobra_mean=float(np.nanmean(cobra_times)),
        walt_mean=float(np.nanmean(walt_times)),
        dominance_fraction=stochastic_dominance_fraction(cobra_times, walt_times),
        trials=trials,
    )
