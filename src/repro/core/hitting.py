"""Monte-Carlo estimators for cover, hitting, and return times.

Trial arrays come back raw so analysis code can fit distributions; the
``*_stats`` wrappers in :mod:`repro.analysis.stats` summarise them.
Per-trial RNG streams are spawned from a single seed, so results are
reproducible regardless of execution order (and across the
multiprocessing path in :mod:`repro.sim.montecarlo`).

The ``cobra_*_trials`` helpers are thin deprecation shims over
:func:`repro.sim.facade.run_batch` (serial strategy — bit-exact with
their historical output); new code should call the facade, which also
offers the vectorized batched engine.
"""

from __future__ import annotations

import warnings

import numpy as np

from ..graphs.base import Graph
from ..sim.rng import SeedLike, resolve_rng, spawn_seeds

__all__ = [
    "cobra_cover_trials",
    "cobra_hitting_trials",
    "max_hitting_time_estimate",
    "pair_hitting_matrix",
]


def cobra_cover_trials(
    graph: Graph,
    *,
    k: int = 2,
    start: int | np.ndarray = 0,
    trials: int = 20,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Cover times of *trials* independent cobra runs (``float64``;
    ``np.nan`` marks budget exhaustion, which the paper's bounds say
    should essentially never happen at sane budgets).

    .. deprecated::
        Shim over :func:`repro.sim.facade.run_batch`; the facade's
        serial strategy reproduces this helper seed-for-seed, and its
        default (vectorized) strategy is several times faster.
    """
    from ..sim.facade import run_batch

    return run_batch(
        graph,
        "cobra",
        metric="cover",
        trials=trials,
        start=start,
        seed=seed,
        max_steps=max_steps,
        strategy="serial",
        k=k,
    ).values


def cobra_hitting_trials(
    graph: Graph,
    target: int,
    *,
    k: int = 2,
    start: int | np.ndarray = 0,
    trials: int = 20,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Hitting times of *target* over independent cobra runs.

    .. deprecated::
        Shim over :func:`repro.sim.facade.run_batch` (serial strategy,
        seed-for-seed identical).
    """
    from ..sim.facade import run_batch

    return run_batch(
        graph,
        "cobra",
        metric="hit",
        trials=trials,
        start=start,
        target=target,
        seed=seed,
        max_steps=max_steps,
        strategy="serial",
        k=k,
    ).values


def max_hitting_time_estimate(
    graph: Graph,
    *,
    k: int = 2,
    trials: int = 5,
    pairs: int | None = None,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> float:
    """Estimate ``h_max = max_{u,v} H(u, v)`` for the cobra walk.

    Evaluates mean hitting time over sampled ``(u, v)`` pairs (all
    ordered pairs when ``pairs`` is ``None`` and ``n ≤ 40``) and
    returns the maximum.  This is the quantity Matthews' bound
    (Theorem 1) consumes.  Per-pair trials run on the vectorized
    batched hitting engine via :func:`repro.sim.facade.run_batch`.

    Budget-exhausted trials are **not** dropped: a trial that never hit
    within the budget has a hitting time of *at least* the budget, so
    it enters its pair's mean clamped to the budget (making each pair
    mean a proper lower bound on the true mean), and a single
    :class:`RuntimeWarning` reports how many pairs were censored (they
    are exactly the pairs where hitting is hardest — silently skipping
    them used to underestimate ``h_max`` where it matters most).
    """
    from ..sim.facade import run_batch

    n = graph.n
    seeds = spawn_seeds(seed, 2)
    rng = resolve_rng(seeds[0])
    if pairs is None and n <= 40:
        pair_list = [(u, v) for u in range(n) for v in range(n) if u != v]
    else:
        count = pairs if pairs is not None else 4 * n
        us = rng.integers(0, n, size=count)
        vs = rng.integers(0, n, size=count)
        keep = us != vs
        pair_list = list(zip(us[keep].tolist(), vs[keep].tolist()))
        if not pair_list:
            pair_list = [(0, n - 1)]
    if max_steps is None:
        from .cobra import _default_budget

        budget = _default_budget(n)
    else:
        budget = int(max_steps)
    hmax = 0.0
    censored_pairs = 0
    trial_seeds = spawn_seeds(seeds[1], len(pair_list))
    for (u, v), s in zip(pair_list, trial_seeds):
        times = run_batch(
            graph,
            "cobra",
            metric="hit",
            trials=trials,
            start=u,
            target=v,
            seed=s,
            max_steps=budget,
            k=k,
        ).values
        failed = np.isnan(times)
        if failed.any():
            # a trial that ran out of budget hit no earlier than the
            # budget: clamp it there instead of dropping it, so the
            # pair mean stays a lower bound on the true mean
            censored_pairs += 1
            times = np.where(failed, float(budget), times)
        mean = float(times.mean())
        if mean > hmax:
            hmax = mean
    if censored_pairs:
        warnings.warn(
            f"max_hitting_time_estimate: {censored_pairs}/{len(pair_list)} "
            f"pair(s) had trials that exhausted the {budget}-step budget; "
            "those trials were clamped to the budget, so h_max is a lower "
            "bound — raise max_steps for a sharper estimate",
            RuntimeWarning,
            stacklevel=2,
        )
    return hmax


def pair_hitting_matrix(
    graph: Graph,
    *,
    k: int = 2,
    trials: int = 5,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> np.ndarray:
    """Full ``n × n`` matrix of estimated cobra hitting times (small
    graphs only: quadratic × trials cost).  Diagonal is zero; an entry
    whose every trial exhausted the budget is ``nan`` (no RuntimeWarning
    is emitted — the caller sees the nan directly)."""
    from ..sim.facade import run_batch

    n = graph.n
    if n > 60:
        raise ValueError(f"pair_hitting_matrix is quadratic; n={n} too large")
    out = np.zeros((n, n))
    seeds = spawn_seeds(seed, n * n)
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            out[u, v] = run_batch(
                graph,
                "cobra",
                metric="hit",
                trials=trials,
                start=u,
                target=v,
                seed=seeds[u * n + v],
                max_steps=max_steps,
                k=k,
            ).mean
    return out
