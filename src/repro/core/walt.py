"""The *Walt* process (paper Section 4).

``δn`` totally ordered pebbles move on the graph; the pebble count is
invariant (no splitting, no coalescing).  Per step:

1. vertices holding one or two pebbles: each pebble moves to an
   independent uniform neighbor;
2. vertices holding three or more: the two lowest-order pebbles move
   to independent uniform choices ``u, w``; every other pebble at the
   vertex flips a fair coin and follows to ``u`` or ``w``.

The paper also makes the process *lazy*: each step, with probability
1/2 no pebble moves at all (one global coin).

Walt's cover time stochastically dominates the cobra walk's from the
same start configuration (Lemma 10), which is what makes it a safe
analysis proxy — and what the ``L10_walt`` experiment verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.base import Graph, sample_uniform_neighbors
from ..sim.rng import SeedLike, resolve_rng

__all__ = [
    "WaltProcess",
    "WaltRunResult",
    "walt_cover_time",
    "walt_start_positions",
    "walt_step_positions",
]


def walt_step_positions(
    graph: Graph,
    positions: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """One (non-lazy) Walt move applied to the ordered pebble array.

    ``positions[i]`` is the vertex of pebble ``i``; the index *is* the
    total order.  Returns the new positions array (fresh allocation).

    Vectorized via a single lexsort by (vertex, pebble order): the two
    lowest-ranked pebbles per occupied vertex draw uniform neighbors in
    one batched call; higher-ranked pebbles gather their group leader's
    or vice-leader's destination by a fair coin.
    """
    p = positions.size
    if p == 0:
        raise ValueError("Walt process has no pebbles")
    order = np.lexsort((np.arange(p), positions))
    sorted_pos = positions[order]
    # group starts: first index of each run of equal vertices
    new_group = np.empty(p, dtype=bool)
    new_group[0] = True
    np.not_equal(sorted_pos[1:], sorted_pos[:-1], out=new_group[1:])
    group_start = np.maximum.accumulate(np.where(new_group, np.arange(p), 0))
    rank = np.arange(p) - group_start
    movers = rank < 2
    dest_sorted = np.empty(p, dtype=np.int64)
    dest_sorted[movers] = sample_uniform_neighbors(graph, sorted_pos[movers], rng)
    followers = ~movers
    if followers.any():
        coin = rng.random(int(followers.sum())) < 0.5
        leader = group_start[followers]  # rank-0 index of the follower's group
        vice = leader + 1
        dest_sorted[followers] = np.where(coin, dest_sorted[leader], dest_sorted[vice])
    out = np.empty(p, dtype=np.int64)
    out[order] = dest_sorted
    return out


@dataclass
class WaltRunResult:
    """Outcome of a Walt run (mirrors :class:`CobraRunResult`)."""

    covered: bool
    steps: int
    cover_time: int | None
    first_visit: np.ndarray


class WaltProcess:
    """Stateful Walt process.

    Parameters
    ----------
    graph:
        Connected graph without isolated vertices.
    positions:
        Initial pebble positions (the index into this array is the
        pebble's priority).  The paper starts ``δn`` pebbles, all at
        one vertex, with ``δ ≤ 1/2``.
    lazy:
        Apply the global 1/2 holding coin each step (paper default).
    seed:
        RNG seed/stream.
    """

    def __init__(
        self,
        graph: Graph,
        positions: np.ndarray,
        *,
        lazy: bool = True,
        seed: SeedLike = None,
    ) -> None:
        positions = np.asarray(positions, dtype=np.int64)
        if positions.size == 0:
            raise ValueError("need at least one pebble")
        if positions.min() < 0 or positions.max() >= graph.n:
            raise ValueError("pebble position out of range")
        self.graph = graph
        self.positions = positions.copy()
        self.lazy = bool(lazy)
        self.rng = resolve_rng(seed)
        self.t = 0
        self.first_visit = np.full(graph.n, -1, dtype=np.int64)
        self.first_visit[np.unique(self.positions)] = 0
        self._num_covered = int((self.first_visit >= 0).sum())

    @property
    def num_pebbles(self) -> int:
        return int(self.positions.size)

    @property
    def num_covered(self) -> int:
        return self._num_covered

    @property
    def all_covered(self) -> bool:
        return self._num_covered == self.graph.n

    def step(self) -> np.ndarray:
        """Advance one (possibly lazy) step; returns current positions."""
        self.t += 1
        if self.lazy and self.rng.random() < 0.5:
            return self.positions
        self.positions = walt_step_positions(self.graph, self.positions, self.rng)
        occupied = np.unique(self.positions)
        fresh = occupied[self.first_visit[occupied] < 0]
        if fresh.size:
            self.first_visit[fresh] = self.t
            self._num_covered += int(fresh.size)
        return self.positions

    def run_until_cover(self, max_steps: int) -> WaltRunResult:
        while not self.all_covered and self.t < max_steps:
            self.step()
        covered = self.all_covered
        return WaltRunResult(
            covered=covered,
            steps=self.t,
            cover_time=int(self.first_visit.max()) if covered else None,
            first_visit=self.first_visit.copy(),
        )


def walt_start_positions(
    graph: Graph,
    delta: float,
    start: int | np.ndarray | None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Initial placement of ``max(1, ⌊δn⌋)`` pebbles.

    With integer/array *start* all pebbles begin there (the paper's
    Theorem 8 configuration, cycling through an array); with
    ``start=None`` they spread uniformly at random.
    """
    if not 0 < delta <= 1:
        raise ValueError("delta must be in (0, 1]")
    num = max(1, int(delta * graph.n))
    if start is None:
        return rng.integers(0, graph.n, size=num)
    start_arr = np.atleast_1d(np.asarray(start, dtype=np.int64))
    return np.resize(start_arr, num)


def walt_cover_time(
    graph: Graph,
    *,
    delta: float = 0.5,
    start: int | np.ndarray | None = 0,
    lazy: bool = True,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> WaltRunResult:
    """Run Walt to coverage (pebble placement per
    :func:`walt_start_positions`)."""
    rng = resolve_rng(seed)
    positions = walt_start_positions(graph, delta, start, rng)
    if max_steps is None:
        max_steps = max(20_000, 1000 * graph.n)
    proc = WaltProcess(graph, positions, lazy=lazy, seed=rng)
    return proc.run_until_cover(max_steps)
