"""Closed-form bound values from every theorem in the paper.

These return the *growth expressions* the theorems assert (constants
set to 1 unless the paper pins one down); experiments compare measured
quantities against these shapes by exponent fitting and ratio tables,
never by absolute value.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "harmonic_number",
    "matthews_cover_bound",
    "thm3_grid_cover",
    "thm8_conductance_cover",
    "cor9_expander_cover",
    "thm15_regular_hitting",
    "thm20_general_hitting",
    "thm20_general_cover",
    "rw_worst_case_cover",
    "rw_regular_cover",
    "rw_lollipop_cover",
    "push_gossip_cover",
    "star_cobra_lower_bound",
    "walt_epoch_count",
]


def harmonic_number(n: int) -> float:
    """``H_n = Σ_{i=1..n} 1/i`` (exact for small n, asymptotic beyond)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    if n < 1_000_000:
        return float(np.sum(1.0 / np.arange(1, n + 1)))
    return float(np.log(n) + 0.5772156649015329 + 1 / (2 * n))


def matthews_cover_bound(hmax: float, n: int) -> float:
    """Theorem 1 (Matthews-type, from Dutta et al.): cover time is at
    most ``O(h_max · log n)``; we evaluate ``h_max · H_n``."""
    return hmax * harmonic_number(n)


def thm3_grid_cover(n: int, d: int = 2) -> float:
    """Theorem 3: cover time of the 2-cobra walk on ``[0, n]^d`` is
    ``O(n)`` (constants depending on ``d`` are suppressed)."""
    if n < 1 or d < 1:
        raise ValueError("need n >= 1 and d >= 1")
    return float(n)


def thm8_conductance_cover(n: int, d: int, conductance: float) -> float:
    """Theorem 8: cover of a d-regular graph in
    ``O(d⁴ Φ⁻² log² n)`` rounds whp."""
    if conductance <= 0:
        raise ValueError("conductance must be positive")
    return d**4 * conductance**-2 * np.log(n) ** 2


def cor9_expander_cover(n: int) -> float:
    """Corollary 9: constant-degree expanders cover in ``O(log² n)``."""
    return float(np.log(n) ** 2)


def thm15_regular_hitting(n: int, delta: int) -> float:
    """Theorem 15: cobra hitting time on a δ-regular graph is
    ``O(n^{2−1/δ})``."""
    if delta < 2:
        raise ValueError("regular degree must be >= 2")
    return float(n ** (2.0 - 1.0 / delta))


def thm20_general_hitting(n: int) -> float:
    """Theorem 20: cobra hitting time on any graph is ``O(n^{11/4})``."""
    return float(n ** 2.75)


def thm20_general_cover(n: int) -> float:
    """Theorem 20: cobra cover time on any graph is ``O(n^{11/4} log n)``."""
    return float(n**2.75 * np.log(n))


def rw_worst_case_cover(n: int) -> float:
    """Feige: worst-case simple random-walk cover time is
    ``(4/27 + o(1)) n³`` (achieved by the lollipop)."""
    return 4.0 / 27.0 * n**3


def rw_regular_cover(n: int) -> float:
    """Classical ``O(n²)`` cover bound for regular graphs."""
    return float(n**2)


def rw_lollipop_cover(n: int) -> float:
    """Alias of :func:`rw_worst_case_cover` for the lollipop witness."""
    return rw_worst_case_cover(n)


def push_gossip_cover(n: int) -> float:
    """Feige–Peleg–Raghavan–Upfal: push gossip informs every vertex of
    any graph in ``O(n log n)`` rounds whp (conjectured for cobra)."""
    return n * np.log(n)


def star_cobra_lower_bound(n: int) -> float:
    """Conclusion remark: on the star, cobra cover is ``Ω(n log n)``
    (the hub's two draws run a coupon collector over ``n − 1`` leaves,
    at most two fresh coupons every other round)."""
    return n * np.log(n) / 4.0


def walt_epoch_count(n: int) -> int:
    """Theorem 8's proof boosts per-epoch constant coverage probability
    through ``O(log n)`` epochs before the union bound."""
    return int(np.ceil(np.log(max(n, 2))))
