"""Matthews-type bound utilities (paper Theorem 1, from Dutta et al.).

For cobra walks, ``cover ≤ O(h_max · log n)`` — and the walk covers
within that many steps with high probability.  The helpers here
measure both sides so the ``T1_matthews`` experiment can exhibit the
ratio staying under a constant multiple of ``log n``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.base import Graph
from ..sim.rng import SeedLike, spawn_seeds
from .bounds import matthews_cover_bound
from .hitting import max_hitting_time_estimate

__all__ = ["MatthewsCheck", "matthews_check"]


@dataclass(frozen=True)
class MatthewsCheck:
    """Measured pieces of the Theorem 1 inequality on one graph.

    ``ratio = cover_mean / hmax`` should stay below ``O(log n)``;
    ``bound`` is ``h_max · H_n``, the explicit Matthews value.
    """

    graph_name: str
    n: int
    hmax: float
    cover_mean: float
    bound: float
    ratio: float
    log_n: float

    @property
    def satisfied(self) -> bool:
        """Whether the measured mean cover time respects the bound."""
        return self.cover_mean <= self.bound


def matthews_check(
    graph: Graph,
    *,
    k: int = 2,
    cover_trials: int = 10,
    hit_trials: int = 5,
    pairs: int | None = None,
    seed: SeedLike = None,
) -> MatthewsCheck:
    """Estimate ``h_max`` and mean cover time, and assemble the
    Theorem 1 comparison.

    Both sides run on the vectorized batched engines: hitting trials
    through :func:`max_hitting_time_estimate` (cobra ``batch_hit``),
    cover trials through :func:`repro.sim.facade.run_batch` (cobra
    ``batch_cover``)."""
    from ..sim.facade import run_batch

    s_hit, s_cover = spawn_seeds(seed, 2)
    hmax = max_hitting_time_estimate(
        graph, k=k, trials=hit_trials, pairs=pairs, seed=s_hit
    )
    cover_mean = run_batch(graph, "cobra", trials=cover_trials, seed=s_cover, k=k).mean
    hmax = max(hmax, 1.0)
    return MatthewsCheck(
        graph_name=graph.name,
        n=graph.n,
        hmax=hmax,
        cover_mean=cover_mean,
        bound=matthews_cover_bound(hmax, graph.n),
        ratio=cover_mean / hmax,
        log_n=float(np.log(graph.n)),
    )
