"""The k-cobra walk (paper Section 2).

At ``t = 0`` a pebble sits on the start vertex.  Each step, every
active vertex samples ``k`` neighbors independently and uniformly
*with replacement*; the sampled vertices are exactly the next active
set (simultaneous arrivals coalesce into one pebble).

Two implementations:

* :func:`cobra_step` — the vectorized production kernel.  One batched
  neighbor draw for the whole frontier, then coalescing either by
  boolean scatter (dense frontiers) or ``np.unique`` (sparse ones).
* :func:`cobra_step_reference` — a dict/set reference used by the test
  suite to pin the kernel's distribution.

:class:`CobraWalk` wraps the kernel with coverage tracking and
stopping rules; module-level helpers run complete cover/hitting
experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graphs.base import Graph, sample_uniform_neighbors
from ..sim.rng import SeedLike, resolve_rng

__all__ = [
    "cobra_step",
    "cobra_step_reference",
    "CobraWalk",
    "CobraRunResult",
    "cobra_cover_time",
    "cobra_hitting_time",
]

#: frontier density above which boolean-scatter coalescing beats sorting
_DENSE_FRACTION = 1 / 16


def cobra_step(
    graph: Graph,
    active: np.ndarray,
    k: int,
    rng: np.random.Generator,
    *,
    scratch: np.ndarray | None = None,
) -> np.ndarray:
    """Advance one cobra step; returns the sorted next active set.

    Parameters
    ----------
    active:
        ``int64`` array of currently active vertex ids (unique).
    k:
        Branching factor (``k >= 1``; the paper's headline results use
        ``k = 2``).
    scratch:
        Optional reusable ``bool[n]`` buffer for the dense-coalescing
        path (avoids reallocation inside cover loops).
    """
    if k < 1:
        raise ValueError(f"branching factor k must be >= 1, got {k}")
    if active.size == 0:
        raise ValueError("cobra walk has no active vertices")
    reps = np.repeat(active, k)
    picks = sample_uniform_neighbors(graph, reps, rng)
    if picks.size >= graph.n * _DENSE_FRACTION:
        if scratch is None:
            scratch = np.zeros(graph.n, dtype=bool)
        else:
            scratch[:] = False
        scratch[picks] = True
        return np.flatnonzero(scratch)
    return np.unique(picks)


def cobra_step_reference(
    graph: Graph, active: set[int], k: int, rng: np.random.Generator
) -> set[int]:
    """Pure-Python reference semantics of one cobra step."""
    nxt: set[int] = set()
    for v in sorted(active):
        nbrs = graph.neighbors(v)
        for _ in range(k):
            nxt.add(int(nbrs[int(rng.random() * nbrs.size)]))
    return nxt


@dataclass
class CobraRunResult:
    """Outcome of a cobra-walk run.

    Attributes
    ----------
    covered:
        Whether every vertex was activated within the step budget.
    steps:
        Steps executed (equals the cover time when ``covered``).
    cover_time:
        Step at which the last vertex was first activated, or ``None``.
    first_activation:
        ``int64[n]``; step at which each vertex first became active
        (``0`` for the start vertex, ``-1`` if never).
    active_size_history:
        ``|S_t|`` per step, when history recording was enabled.
    """

    covered: bool
    steps: int
    cover_time: int | None
    first_activation: np.ndarray
    active_size_history: np.ndarray | None = None


class CobraWalk:
    """Stateful k-cobra walk on *graph* with coverage tracking.

    Parameters
    ----------
    graph:
        Connected graph without isolated vertices.
    k:
        Branching factor.
    start:
        Initial active vertex, or an iterable of vertices for
        multi-source starts (used by the Theorem 8 machinery, which
        hands a cobra walk a large starting set).
    seed:
        Anything accepted by :func:`repro.sim.rng.resolve_rng`.
    record_history:
        Keep ``|S_t|`` per step (costs one append per step).
    """

    def __init__(
        self,
        graph: Graph,
        *,
        k: int = 2,
        start: int | np.ndarray = 0,
        seed: SeedLike = None,
        record_history: bool = False,
    ) -> None:
        if k < 1:
            raise ValueError(f"branching factor k must be >= 1, got {k}")
        self.graph = graph
        self.k = int(k)
        self.rng = resolve_rng(seed)
        start_arr = np.atleast_1d(np.asarray(start, dtype=np.int64))
        if start_arr.size == 0:
            raise ValueError("need at least one start vertex")
        if start_arr.min() < 0 or start_arr.max() >= graph.n:
            raise ValueError("start vertex out of range")
        self.active = np.unique(start_arr)
        self.t = 0
        self.first_activation = np.full(graph.n, -1, dtype=np.int64)
        self.first_activation[self.active] = 0
        self._num_covered = int(self.active.size)
        self._scratch = np.zeros(graph.n, dtype=bool)
        self._history: list[int] | None = [self.active.size] if record_history else None

    @property
    def num_covered(self) -> int:
        """Number of vertices activated so far."""
        return self._num_covered

    @property
    def history(self) -> np.ndarray | None:
        """``|S_t|`` per step (``None`` unless ``record_history``)."""
        if self._history is None:
            return None
        return np.asarray(self._history, dtype=np.int64)

    @property
    def all_covered(self) -> bool:
        return self._num_covered == self.graph.n

    def step(self) -> np.ndarray:
        """Advance one step; returns the new active set."""
        self.active = cobra_step(
            self.graph, self.active, self.k, self.rng, scratch=self._scratch
        )
        self.t += 1
        fresh = self.active[self.first_activation[self.active] < 0]
        if fresh.size:
            self.first_activation[fresh] = self.t
            self._num_covered += int(fresh.size)
        if self._history is not None:
            self._history.append(int(self.active.size))
        return self.active

    def run_until_cover(self, max_steps: int) -> CobraRunResult:
        """Step until all vertices are covered or *max_steps* elapse."""
        while not self.all_covered and self.t < max_steps:
            self.step()
        return self._result()

    def run_until_hit(self, target: int, max_steps: int) -> int | None:
        """Step until *target* is activated; returns the hitting step or
        ``None`` on budget exhaustion."""
        if not (0 <= target < self.graph.n):
            raise ValueError("target out of range")
        while self.first_activation[target] < 0 and self.t < max_steps:
            self.step()
        hit = self.first_activation[target]
        return int(hit) if hit >= 0 else None

    def _result(self) -> CobraRunResult:
        covered = self.all_covered
        return CobraRunResult(
            covered=covered,
            steps=self.t,
            cover_time=int(self.first_activation.max()) if covered else None,
            first_activation=self.first_activation.copy(),
            active_size_history=(
                np.asarray(self._history, dtype=np.int64) if self._history is not None else None
            ),
        )


def cobra_cover_time(
    graph: Graph,
    *,
    k: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> CobraRunResult:
    """Run one cobra walk to full coverage (budget default ``500·n·log n``-ish,
    far above every bound the paper proves).

    .. deprecated::
        Thin shim over :func:`repro.sim.facade.simulate` (process
        ``"cobra"``, metric ``"cover"``); prefer the facade, which
        reproduces this helper seed-for-seed.
    """
    from ..sim.facade import simulate

    r = simulate(
        graph, "cobra", metric="cover", start=start, seed=seed, max_steps=max_steps, k=k
    )
    return CobraRunResult(
        covered=r.covered,
        steps=r.steps,
        cover_time=r.cover_time,
        first_activation=r.first_activation,
    )


def cobra_hitting_time(
    graph: Graph,
    target: int,
    *,
    k: int = 2,
    start: int | np.ndarray = 0,
    seed: SeedLike = None,
    max_steps: int | None = None,
) -> int | None:
    """Hitting time of *target* for one cobra run (``None`` = budget hit).

    .. deprecated::
        Thin shim over :func:`repro.sim.facade.simulate` (process
        ``"cobra"``, metric ``"hit"``); prefer the facade.
    """
    from ..sim.facade import simulate

    r = simulate(
        graph,
        "cobra",
        metric="hit",
        start=start,
        target=target,
        seed=seed,
        max_steps=max_steps,
        k=k,
    )
    return r.extras["hit_time"]


def _default_budget(n: int) -> int:
    return max(10_000, 500 * n * max(1, int(np.ceil(np.log(max(n, 2))))))
