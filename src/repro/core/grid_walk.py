"""Theorem 3's pessimistic single-pebble grid chain.

The proof of Theorem 3 tracks a *single* pebble of the 2-cobra walk on
``[0, n]^d`` and its per-dimension distances ``(z_1, …, z_d)`` to a
target vertex, resolving the two generated pebbles by fixed rules:

* both moves in the same dimension → keep the pebble that got closer
  (if any did);
* moves in dimensions ``i ≠ j``: if ``z_i = 0 ≠ z_j`` keep the ``j``
  move; if both are zero or the moves are equally good/bad pick at
  random; otherwise keep the move that got closer.

Lemma 4 derives drift: a non-zero coordinate changes with probability
at least ``1/(2d−1)``, and conditioned on changing it decreases with
probability at least ``1/2 + 1/(8d−4)``; a zero coordinate becomes
non-zero with probability at most ``2/(d+1)``.  The chain doubles as a
``d``-queue discrete-time system (the paper's queueing remark).

:class:`PessimisticGridWalk` simulates the true on-grid process
(boundaries included); :func:`lemma4_drift_bounds` returns the closed
forms for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.rng import SeedLike, resolve_rng

__all__ = [
    "PessimisticGridWalk",
    "lemma4_drift_bounds",
    "grid_chain_hitting_time",
]


def lemma4_drift_bounds(d: int) -> dict[str, float]:
    """Lemma 4's closed-form drift bounds for dimension count *d*."""
    if d < 1:
        raise ValueError("dimension must be >= 1")
    return {
        "p_change_min": 1.0 / (2 * d - 1),
        "p_decrease_given_change_min": 0.5 + 1.0 / (8 * d - 4),
        "p_leave_zero_max": 2.0 / (d + 1),
    }


@dataclass
class _Move:
    dim: int
    delta: int  # ±1 in grid coordinates


class PessimisticGridWalk:
    """The tracked-pebble chain of Theorem 3 on the true grid
    ``[0, n]^d`` (boundary effects included).

    State: the tracked pebble's coordinates and the target's.  Each
    step the pebble's two cobra children draw independent uniform
    neighbors; the selection rules above decide which child the
    analysis follows.

    Parameters
    ----------
    n, d:
        Grid extent and dimension (vertices per axis: ``n + 1``).
    start, target:
        Coordinate arrays of length ``d``.
    """

    def __init__(
        self,
        n: int,
        d: int,
        start: np.ndarray,
        target: np.ndarray,
        *,
        seed: SeedLike = None,
    ) -> None:
        if n < 1 or d < 1:
            raise ValueError("need n >= 1 and d >= 1")
        self.n = n
        self.d = d
        self.pos = np.asarray(start, dtype=np.int64).copy()
        self.target = np.asarray(target, dtype=np.int64).copy()
        for arr in (self.pos, self.target):
            if arr.shape != (d,) or arr.min() < 0 or arr.max() > n:
                raise ValueError("coordinates must be length-d and within [0, n]")
        self.rng = resolve_rng(seed)
        self.t = 0

    # ------------------------------------------------------------------
    def z(self) -> np.ndarray:
        """Current per-dimension distances ``z_i = |pos_i − target_i|``."""
        return np.abs(self.pos - self.target)

    def at_target(self) -> bool:
        return bool((self.pos == self.target).all())

    def _draw_move(self) -> _Move:
        """Uniform neighbor of the current position, as (dim, ±1)."""
        # enumerate feasible (dim, delta) pairs; uniform over them
        feas: list[_Move] = []
        for i in range(self.d):
            if self.pos[i] > 0:
                feas.append(_Move(i, -1))
            if self.pos[i] < self.n:
                feas.append(_Move(i, +1))
        return feas[int(self.rng.random() * len(feas))]

    def _closer(self, mv: _Move) -> int:
        """−1 if the move decreases |z| in its dimension, +1 if it
        increases it (0 never happens since the move changes pos)."""
        i = mv.dim
        before = abs(self.pos[i] - self.target[i])
        after = abs(self.pos[i] + mv.delta - self.target[i])
        return -1 if after < before else +1

    def step(self) -> None:
        """One cobra step of the tracked pebble (paper's rules)."""
        a = self._draw_move()
        b = self._draw_move()
        z = self.z()
        if a.dim == b.dim:
            # same dimension: prefer whichever move gets closer
            pick = a if self._closer(a) <= self._closer(b) else b
        else:
            za, zb = z[a.dim], z[b.dim]
            if za == 0 and zb != 0:
                pick = b
            elif zb == 0 and za != 0:
                pick = a
            elif za == 0 and zb == 0:
                pick = a if self.rng.random() < 0.5 else b
            else:
                ca, cb = self._closer(a), self._closer(b)
                if ca == cb:
                    pick = a if self.rng.random() < 0.5 else b
                else:
                    pick = a if ca < cb else b
        self.pos[pick.dim] += pick.delta
        self.t += 1

    def run_until_hit(self, max_steps: int) -> int | None:
        """Steps until the tracked pebble sits on the target."""
        while not self.at_target() and self.t < max_steps:
            self.step()
        return self.t if self.at_target() else None


def grid_chain_hitting_time(
    n: int,
    d: int,
    *,
    seed: SeedLike = None,
    start: np.ndarray | None = None,
    target: np.ndarray | None = None,
    max_steps: int | None = None,
) -> int | None:
    """Hit time of the pessimistic chain from corner to corner by
    default — the paper's worst-case starting distance."""
    rng = resolve_rng(seed)
    if start is None:
        start = np.zeros(d, dtype=np.int64)
    if target is None:
        target = np.full(d, n, dtype=np.int64)
    if max_steps is None:
        max_steps = 2000 * (n + 1) * d * d
    walk = PessimisticGridWalk(n, d, start, target, seed=rng)
    return walk.run_until_hit(max_steps)
