"""Quickstart: run a cobra walk and see why it beats a random walk.

Usage::

    python examples/quickstart.py

Builds a 2-D grid, runs a 2-cobra walk (the paper's headline process)
to full coverage, and compares against a simple random walk and push
gossip from the same start vertex.
"""

from __future__ import annotations

import numpy as np

from repro.core import cobra_cover_time
from repro.graphs import grid
from repro.walks import push_spread_time, rw_cover_time


def main() -> None:
    n = 40  # grid extent: vertices are [0, 40]^2
    g = grid(n, 2)
    print(f"graph: {g.name} with {g.n} vertices, {g.m} edges")

    # --- the paper's process: a 2-cobra walk -------------------------
    result = cobra_cover_time(g, k=2, start=0, seed=1)
    print(f"\n2-cobra walk covered all vertices in {result.cover_time} steps")
    print(f"  (Theorem 3 predicts O(n) = O({n}); measured/{n} = "
          f"{result.cover_time / n:.2f})")

    # the per-vertex first-activation times are in the result:
    far_corner = g.n - 1
    print(f"  far corner first activated at step "
          f"{result.first_activation[far_corner]}")

    # --- baselines ----------------------------------------------------
    rw = rw_cover_time(g, start=0, seed=2)
    push = push_spread_time(g, start=0, seed=3)
    print(f"\nsimple random walk cover : {rw} steps "
          f"({rw / result.cover_time:.0f}x slower)")
    print(f"push gossip spread       : {push} rounds "
          f"(same O(diameter) class as the cobra walk here)")

    # --- reproducibility ----------------------------------------------
    again = cobra_cover_time(g, k=2, start=0, seed=1)
    assert again.cover_time == result.cover_time
    print("\nseeded rerun reproduced the identical trajectory — "
          "all repro APIs take a seed.")


if __name__ == "__main__":
    main()
