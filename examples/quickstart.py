"""Quickstart: run a cobra walk and see why it beats a random walk.

Usage::

    python examples/quickstart.py

Builds a 2-D grid and drives everything through the unified process
API: ``simulate()`` runs any registered process (cobra, simple walk,
push gossip, …) to one ``RunResult`` schema, and ``run_batch()``
aggregates Monte-Carlo trials — vectorized where the process has a
batched engine.
"""

from __future__ import annotations

from repro import run_batch, simulate
from repro.graphs import grid
from repro.sim import process_names


def main() -> None:
    n = 40  # grid extent: vertices are [0, 40]^2
    g = grid(n, 2)
    print(f"graph: {g.name} with {g.n} vertices, {g.m} edges")
    print(f"registered processes: {', '.join(process_names())}")

    # --- the paper's process: a 2-cobra walk -------------------------
    result = simulate(g, process="cobra", k=2, start=0, seed=1)
    print(f"\n2-cobra walk covered all vertices in {result.cover_time} steps")
    print(f"  (Theorem 3 predicts O(n) = O({n}); measured/{n} = "
          f"{result.cover_time / n:.2f})")

    # the per-vertex first-activation times are in the result:
    far_corner = g.n - 1
    print(f"  far corner first activated at step "
          f"{result.first_activation[far_corner]}")

    # --- baselines, same facade --------------------------------------
    rw = simulate(g, process="simple", start=0, seed=2)
    push = simulate(g, process="push", start=0, seed=3)
    print(f"\nsimple random walk cover : {rw.cover_time} steps "
          f"({rw.cover_time / result.cover_time:.0f}x slower)")
    print(f"push gossip spread       : {push.cover_time} rounds "
          f"(same O(diameter) class as the cobra walk here)")

    # --- Monte-Carlo sweeps: one call, vectorized --------------------
    batch = run_batch(g, "cobra", trials=32, seed=4)
    print(f"\n32 batched cobra trials  : cover {batch.mean:.1f} "
          f"± {batch.ci95_half_width:.1f} steps "
          f"(all trials advanced in one numpy frontier)")

    # --- reproducibility ----------------------------------------------
    again = simulate(g, process="cobra", k=2, start=0, seed=1)
    assert again.cover_time == result.cover_time
    print("\nseeded rerun reproduced the identical trajectory — "
          "all repro APIs take a seed.")


if __name__ == "__main__":
    main()
