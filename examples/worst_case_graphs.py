"""Theorem 20's battleground: worst-case graphs for random walks.

The lollipop graph (clique + tail) drives the simple random walk's
cover time to Θ(n³) — the worst possible.  Theorem 20 guarantees the
2-cobra walk never needs more than O(n^{11/4} log n) on *any* graph;
on the lollipop it is in fact near-linear, because the clique stays
saturated with active vertices and keeps re-seeding the tail.

This example measures both processes on lollipops and barbells, prints
the exact random-walk hitting time (certifying the cubic growth), and
shows where each process spends its time (clique vs tail).

Usage::

    python examples/worst_case_graphs.py
"""

from __future__ import annotations

from repro.analysis import Table, fit_power_law
from repro.core import cobra_cover_time, thm20_general_cover
from repro.graphs import barbell, lollipop
from repro.sim import coverage_curve, simulate
from repro.walks import rw_exact_hitting_times


def main() -> None:
    print("=== lollipop: the Θ(n³) random-walk witness ===\n")
    ns = [24, 48, 96, 192]
    table = Table(
        ["n", "cobra cover", "rw hmax (exact)", "rw cover (sim)", "thm20 bound"],
        title="lollipop graphs",
    )
    cobra_list, rw_list = [], []
    for n in ns:
        g = lollipop(n)
        res = cobra_cover_time(g, seed=n)
        h = rw_exact_hitting_times(g, g.n - 1).max()
        rw_sim = (
            simulate(g, "simple", seed=n, max_steps=40 * n**3).cover_time
            if n <= 48
            else None
        )
        cobra_list.append(res.cover_time)
        rw_list.append(float(h))
        table.add_row([n, res.cover_time, float(h), rw_sim, thm20_general_cover(n)])
    cf = fit_power_law(ns, cobra_list)
    rf = fit_power_law(ns, rw_list)
    table.add_row(["fit", f"n^{cf.exponent:.2f}", f"n^{rf.exponent:.2f}", "", "n^2.75·log n"])
    print(table.render())

    print("\nWhere the time goes (lollipop n=96):")
    g = lollipop(96)
    res = cobra_cover_time(g, seed=96)
    c = g.meta["clique"]
    clique_done = int(res.first_activation[:c].max())
    tail_done = int(res.first_activation[c:].max())
    print(f"  clique ({c} vertices) fully covered by step {clique_done}")
    print(f"  tail   ({g.n - c} vertices) fully covered by step {tail_done}")
    curve = coverage_curve(res.first_activation)
    print(f"  90% of the graph covered by step {curve.time_to_fraction(0.9)}")
    print(
        "  — the clique saturates in O(log n) steps and then acts as a\n"
        "    constant-rate pump into the tail; the random walk instead\n"
        "    keeps falling back into the clique (expected n/2 re-entries\n"
        "    per tail step, n^2 steps to cross: the cubic mechanism)."
    )

    print("\n=== barbell: two traps, same story ===\n")
    t2 = Table(["n", "cobra cover", "rw hmax (exact)"], title="barbell graphs")
    for n in (24, 48, 96):
        g = barbell(n)
        res = cobra_cover_time(g, seed=n)
        h = rw_exact_hitting_times(g, g.n - 1).max()
        t2.add_row([n, res.cover_time, float(h)])
    print(t2.render())
    print(
        "\nTakeaway: the paper's Theorem 20 bound O(n^{11/4} log n) is the\n"
        "first sub-n³ worst-case guarantee for any branching walk — and on\n"
        "the classical witnesses the true cobra behaviour is near-linear."
    )


if __name__ == "__main__":
    main()
