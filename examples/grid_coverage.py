"""Theorem 3 up close: watch a 2-cobra walk cover the grid in O(n).

Renders the coverage wavefront of a 2-cobra walk on ``[0, n]^2`` as
ASCII frames, then sweeps the grid size to exhibit the linear scaling
(exponent fit ~= 1.0) the theorem proves.

Usage::

    python examples/grid_coverage.py
"""

from __future__ import annotations

import numpy as np

from repro import run_batch
from repro.analysis import Table, fit_power_law
from repro.core import CobraWalk
from repro.graphs import grid


def render_frame(first_activation: np.ndarray, n: int, t: int) -> str:
    """ASCII heatmap: '#' covered, '+' active frontier age, '.' untouched."""
    side = n + 1
    fa = first_activation.reshape(side, side)
    lines = []
    for y in range(side - 1, -1, -1):
        row = []
        for x in range(side):
            v = fa[y, x]
            if v < 0:
                row.append("·")
            elif t - v <= 1:
                row.append("#")
            else:
                row.append("o")
        lines.append("".join(row))
    return "\n".join(lines)


def wavefront_demo(n: int = 24, frames: int = 4) -> None:
    g = grid(n, 2)
    center = (n // 2) * (n + 1) + n // 2
    walk = CobraWalk(g, start=center, seed=7)
    result = None
    print(f"--- 2-cobra wavefront on [0,{n}]^2 from the center ---")
    checkpoints = None
    while not walk.all_covered:
        walk.step()
        if checkpoints is None:
            # estimate total time from Theorem 3's linear law to pick frames
            checkpoints = {max(1, int(2.6 * n * f / frames)) for f in range(1, frames + 1)}
        if walk.t in checkpoints:
            print(f"\nstep {walk.t} ({walk.num_covered}/{g.n} covered):")
            print(render_frame(walk.first_activation, n, walk.t))
    print(f"\nfully covered at step {walk.t} ≈ {walk.t / n:.2f}·n\n")


def scaling_demo() -> None:
    ns = [8, 16, 32, 64]
    table = Table(["n", "mean cover", "cover/n"], title="Theorem 3 linear scaling")
    covers = []
    for n in ns:
        # one facade call; all 8 trials advance in one batched frontier
        summary = run_batch(grid(n, 2), "cobra", trials=8, seed=n)
        covers.append(summary.mean)
        table.add_row([n, covers[-1], covers[-1] / n])
    fit = fit_power_law(ns, covers)
    table.add_row(["fit", f"n^{fit.exponent:.3f} ± {fit.exponent_ci95:.3f}", ""])
    print(table.render())
    print("\nTheorem 3: cover time = O(n) — the fitted exponent sits at 1, "
          "not the\nrandom walk's 2 (and the cover/n constant is the paper's "
          "d-dependent factor).")


def main() -> None:
    wavefront_demo()
    scaling_demo()


if __name__ == "__main__":
    main()
