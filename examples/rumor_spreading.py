"""Rumor spreading in a peer-to-peer overlay.

The paper's message-passing motivation: a vertex may forward k copies
of a message to random neighbors each round.  On a P2P-style overlay
(random 8-regular — the classical robust overlay topology) we compare
the time for one message to reach every peer under:

* 2-cobra forwarding (the paper's protocol),
* push gossip (every informed node forwards every round — more
  messages per round, the classical baseline),
* 2 parallel random walks (token passing, constant state),
* a single random walk (the minimal-state baseline).

We also measure the per-protocol *message cost* (total forwards until
full dissemination), the trade-off the paper's intro highlights: a
cobra walk's per-round message budget equals k·|active| ≤ 2·frontier,
while push pays |informed| forwards every round.

Usage::

    python examples/rumor_spreading.py
"""

from __future__ import annotations

import numpy as np

from repro import run_batch
from repro.analysis import Table, summarize
from repro.core import CobraWalk
from repro.graphs import random_regular
from repro.sim import spawn_seeds


def cobra_rounds_and_messages(graph, seed) -> tuple[int, int]:
    walk = CobraWalk(graph, k=2, start=0, seed=seed, record_history=True)
    result = walk.run_until_cover(10 * graph.n * 20)
    messages = int(2 * result.active_size_history[:-1].sum())
    return result.cover_time, messages


def push_rounds_and_messages(graph, seed) -> tuple[int, int]:
    # re-simulate push, counting one forward per informed vertex per round
    from repro.graphs import sample_uniform_neighbors
    from repro.sim import resolve_rng

    rng = resolve_rng(seed)
    informed = np.zeros(graph.n, dtype=bool)
    informed[0] = True
    messages = 0
    for t in range(1, 10 * graph.n * 20):
        senders = np.flatnonzero(informed)
        messages += senders.size
        targets = sample_uniform_neighbors(graph, senders, rng)
        informed[targets] = True
        if informed.all():
            return t, messages
    raise RuntimeError("push did not finish")


def main() -> None:
    n = 2048
    g = random_regular(n, 8, seed=5)
    print(f"overlay: {g.name}, n={g.n}, diameter-scale ~ log n = {np.log(n):.1f}\n")

    trials = 10
    rows = {
        "2-cobra forwarding": [],
        "push gossip": [],
    }
    msg = {"2-cobra forwarding": [], "push gossip": []}
    for s_cobra, s_push in zip(spawn_seeds(1, trials), spawn_seeds(2, trials)):
        r, m = cobra_rounds_and_messages(g, s_cobra)
        rows["2-cobra forwarding"].append(r)
        msg["2-cobra forwarding"].append(m)
        r, m = push_rounds_and_messages(g, s_push)
        rows["push gossip"].append(r)
        msg["push gossip"].append(m)

    # walk-based token-passing baselines through the unified facade
    par = run_batch(g, "parallel", trials=3, seed=3, walkers=2)
    rw = run_batch(g, "simple", trials=2, seed=4)

    table = Table(
        ["protocol", "rounds (mean)", "rounds (median)", "messages (mean)"],
        title="time and message cost to inform all peers",
    )
    for name in rows:
        s = summarize(rows[name])
        table.add_row([name, s.mean, s.median, float(np.mean(msg[name]))])
    table.add_row(["2 parallel walks", par.mean, par.median, par.mean * 2])
    table.add_row(["single random walk", rw.mean, rw.median, rw.mean])
    print(table.render())

    print(
        "\nReading: cobra forwarding finishes in O(log^2 n) rounds "
        "(Corollary 9)\nat a total message cost comparable to push "
        "gossip's — but with at most\ntwo forwards per active vertex per "
        "round and no 'already informed'\nbookkeeping, while token-passing "
        "protocols (walk-based) pay ~n log n\nrounds — the trade-off space "
        "the paper's introduction lays out."
    )


if __name__ == "__main__":
    main()
