"""Epidemic scenario: cobra walks as an idealized SIS process.

The paper (§1) frames the k-cobra walk as an idealized
Susceptible-Infected-Susceptible epidemic: each round, every infected
agent infects k uniformly random contacts and recovers (it can be
re-infected immediately).  The active set is the set of currently
infected agents; the cover time is the moment every agent has been
exposed at least once.

This example builds two plausible contact networks — a power-law
social graph and a geometric proximity graph — and reports, per
branching factor k (the per-round contact count):

* the time until everyone has been exposed (cover time),
* the endemic prevalence (the active set's equilibrium fraction),
* the exposure curve (fraction ever exposed vs round).

Usage::

    python examples/epidemic_sis.py
"""

from __future__ import annotations

from repro.analysis import Table
from repro.core import CobraWalk
from repro.graphs import chung_lu_powerlaw, largest_component, random_geometric
from repro.sim import coverage_curve


def epidemic_report(graph, k: int, seed: int, max_rounds: int = 200_000):
    """Run one SIS outbreak from patient zero (vertex 0)."""
    walk = CobraWalk(graph, k=k, start=0, seed=seed, record_history=True)
    result = walk.run_until_cover(max_rounds)
    history = result.active_size_history
    # endemic prevalence: average infected fraction over the last
    # quarter of the outbreak (after the growth phase)
    tail = history[-max(1, history.size // 4):]
    prevalence = float(tail.mean()) / graph.n
    return result, prevalence


def exposure_milestones(result, n: int) -> dict[float, int | None]:
    curve = coverage_curve(result.first_activation, n)
    return {f: curve.time_to_fraction(f) for f in (0.5, 0.9, 0.99, 1.0)}


def main() -> None:
    networks = {
        "power-law contacts (Chung-Lu β=2.5)": largest_component(
            chung_lu_powerlaw(3000, 2.5, avg_degree=8.0, seed=11)
        ),
        "proximity contacts (geometric r=0.035)": largest_component(
            random_geometric(3000, 0.035, seed=12)
        ),
    }
    for name, g in networks.items():
        print(f"\n=== {name}: n={g.n}, m={g.m}, "
              f"max degree {g.max_degree} ===")
        table = Table(
            ["k (contacts/round)", "all exposed by", "50% exposed", "90% exposed",
             "endemic prevalence"],
        )
        for k in (1, 2, 3, 4):
            result, prevalence = epidemic_report(g, k, seed=100 + k)
            ms = exposure_milestones(result, g.n)
            table.add_row(
                [k, result.cover_time, ms[0.5], ms[0.9], f"{prevalence:.1%}"]
            )
        print(table.render())
        print(
            "k=1 is a random-walk infection (slow, no outbreak); k>=2 is the\n"
            "cobra regime — exposure completes orders of magnitude sooner and\n"
            "an endemic active set persists, exactly the SIS picture the\n"
            "paper's cover-time bounds quantify."
        )


if __name__ == "__main__":
    main()
