"""Machine-readable benchmark output: ``BENCH_<name>.json`` files.

CI runs the benchmark scripts' ``__main__`` blocks and uploads the
JSON they emit as build artifacts, so the perf trajectory is a series
of structured documents instead of log lines.  Locally::

    BENCH_OUT=/tmp PYTHONPATH=src python benchmarks/bench_facade_batch.py

``BENCH_OUT`` picks the output directory (default: the working
directory).

Schema 2 stamps the execution environment into every document —
hostname, CPU count, numpy/numba versions, and which engine backend
produced the numbers — so a regression flagged by
``ci/check_bench_regression.py`` can be told apart from a machine
change at a glance.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path

#: bumped whenever stamped fields change shape; the regression gate
#: and the smoke tests pin this
SCHEMA_VERSION = 2


def _environment_stamp() -> dict:
    """The machine/toolchain fields stamped into every document."""
    import numpy

    try:
        import numba

        numba_version: str | None = numba.__version__
    except ImportError:
        numba_version = None
    return {
        "hostname": platform.node(),
        "cpu_count": os.cpu_count(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy_version": numpy.__version__,
        "numba_version": numba_version,
    }


def emit_bench_json(
    name: str,
    payload: dict,
    out_dir: str | None = None,
    *,
    backend: str = "numpy",
) -> Path:
    """Write one ``BENCH_<name>.json`` document and return its path.

    Parameters
    ----------
    name : str
        Benchmark name (the file is ``BENCH_<name>.json``).
    payload : dict
        JSON-safe measurement fields (timings in milliseconds,
        speedups, case lists…).
    out_dir : str, optional
        Output directory; default ``$BENCH_OUT`` or the working
        directory.
    backend : str, optional
        The engine backend that produced the measurements (``"numpy"``
        unless the script dispatched compiled kernels); stamped, never
        interpreted.

    Returns
    -------
    Path
        The file written.
    """
    out = Path(out_dir or os.environ.get("BENCH_OUT") or ".")
    out.mkdir(parents=True, exist_ok=True)
    doc = {
        "bench": name,
        "schema": SCHEMA_VERSION,
        # provenance stamp on a build artifact — never hashed or seeded
        "created_unix": round(time.time(), 3),  # repro-lint: disable=RPL103
        "backend": backend,
        **_environment_stamp(),
        **payload,
    }
    path = out / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"[bench] wrote {path}", file=sys.stderr)
    return path
