"""Machine-readable benchmark output: ``BENCH_<name>.json`` files.

CI runs the benchmark scripts' ``__main__`` blocks and uploads the
JSON they emit as build artifacts, so the perf trajectory is a series
of structured documents instead of log lines.  Locally::

    BENCH_OUT=/tmp PYTHONPATH=src python benchmarks/bench_facade_batch.py

``BENCH_OUT`` picks the output directory (default: the working
directory).
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from pathlib import Path


def emit_bench_json(name: str, payload: dict, out_dir: str | None = None) -> Path:
    """Write one ``BENCH_<name>.json`` document and return its path.

    Parameters
    ----------
    name : str
        Benchmark name (the file is ``BENCH_<name>.json``).
    payload : dict
        JSON-safe measurement fields (timings in milliseconds,
        speedups, case lists…).
    out_dir : str, optional
        Output directory; default ``$BENCH_OUT`` or the working
        directory.

    Returns
    -------
    Path
        The file written.
    """
    out = Path(out_dir or os.environ.get("BENCH_OUT") or ".")
    out.mkdir(parents=True, exist_ok=True)
    doc = {
        "bench": name,
        "schema": 1,
        # provenance stamp on a build artifact — never hashed or seeded
        "created_unix": round(time.time(), 3),  # repro-lint: disable=RPL103
        "python": platform.python_version(),
        "machine": platform.machine(),
        **payload,
    }
    path = out / f"BENCH_{name}.json"
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"[bench] wrote {path}", file=sys.stderr)
    return path
