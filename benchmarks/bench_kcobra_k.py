"""Benchmark: regenerate the KCOBRA_k experiment table (quick scale)."""

from conftest import run_experiment


def test_kcobra_k(benchmark):
    result = run_experiment(benchmark, "KCOBRA_k")
    assert result.tables
    assert result.findings
