"""Benchmark: regenerate the T15_regular experiment table (quick scale)."""

from conftest import run_experiment


def test_t15_regular(benchmark):
    result = run_experiment(benchmark, "T15_regular")
    assert result.tables
    assert result.findings
