"""Benchmark: regenerate the C9_expander experiment table (quick scale)."""

from conftest import run_experiment


def test_c9_expander(benchmark):
    result = run_experiment(benchmark, "C9_expander")
    assert result.tables
    assert result.findings
