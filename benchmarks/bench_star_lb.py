"""Benchmark: regenerate the STAR_lb experiment table (quick scale)."""

from conftest import run_experiment


def test_star_lb(benchmark):
    result = run_experiment(benchmark, "STAR_lb")
    assert result.tables
    assert result.findings
