"""Benchmark: regenerate the TREES_kary experiment table (quick scale)."""

from conftest import run_experiment


def test_trees_kary(benchmark):
    result = run_experiment(benchmark, "TREES_kary")
    assert result.tables
    assert result.findings
