"""Benchmark: regenerate the L11_tensor experiment table (quick scale)."""

from conftest import run_experiment


def test_l11_tensor(benchmark):
    result = run_experiment(benchmark, "L11_tensor")
    assert result.tables
    assert result.findings
