"""Shared helpers for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Each ``bench_<experiment-id>.py`` regenerates one paper-claim table at
``quick`` scale (single-shot timing: the experiments are themselves
Monte-Carlo aggregates, so statistical repetition lives inside them,
not in pytest-benchmark rounds).  ``bench_kernels.py`` holds the
microbenchmarks and the DESIGN.md ablations.
"""

from __future__ import annotations

from repro.experiments import get

SEED = 2016


def run_experiment(benchmark, exp_id: str):
    """Benchmark one experiment run and echo its tables."""
    exp = get(exp_id)
    result = benchmark.pedantic(
        lambda: exp.run(scale="quick", seed=SEED), rounds=1, iterations=1
    )
    print()
    print(result.render())
    return result
