"""Benchmark: implicit-oracle throughput and memory footprint.

Two measurements per arithmetic topology (torus / hypercube /
circulant / kronecker):

* **sampling throughput** — `sample_one` draws/second over a full-size
  frontier (the hot kernel every flat-frontier engine rides);
* **end-to-end cover** — one `run_batch` cobra cover cell (vectorized
  engine, budget-capped at scale), wall-clock plus the process
  peak-RSS growth it caused.

At full scale the torus is 10⁶ vertices and the hypercube 2²⁰ — sizes
whose CSR edge arrays would never be built here; the peak-RSS column
is the proof.  Run directly::

    PYTHONPATH=src python benchmarks/bench_implicit.py [--quick]

emitting ``BENCH_implicit.json`` (throughput + peak-RSS per case).
"""

from __future__ import annotations

import resource
import sys
import time

import numpy as np

from repro.graphs import (
    circulant_oracle,
    hypercube_oracle,
    kronecker_oracle,
    torus_oracle,
)
from repro.sim.facade import run_batch
from repro.sim.rng import resolve_rng

SEED = 2016
TRIALS = 2
ROUNDS = 3

#: (label, builder, full params, quick params)
CASES = [
    ("torus", torus_oracle, {"n": 999, "d": 2}, {"n": 99, "d": 2}),
    ("hypercube", hypercube_oracle, {"dim": 20}, {"dim": 13}),
    ("circulant", circulant_oracle, {"n": 1_000_001, "offsets": (1, 2, 5)},
     {"n": 10_001, "offsets": (1, 2, 5)}),
    ("kronecker", kronecker_oracle,
     {"base": (0, 1, 1, 1, 0, 1, 1, 1, 0), "power": 12},
     {"base": (0, 1, 1, 1, 0, 1, 1, 1, 0), "power": 8}),
]
MAX_STEPS = {"full": 256, "quick": 64}


def _peak_rss_mb() -> float:
    """The process peak RSS in MiB (``ru_maxrss`` is KiB on Linux)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def measure_case(label: str, oracle, max_steps: int) -> dict:
    """Measure one topology: sampling draws/s and a cover-cell run."""
    rng = resolve_rng(SEED)
    frontier = np.arange(oracle.n, dtype=np.int64)
    oracle.sample_one(frontier[: min(oracle.n, 1024)], rng)  # warm-up
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.perf_counter()
        oracle.sample_one(frontier, rng)
        best = min(best, time.perf_counter() - t0)
    draws_per_s = oracle.n / best

    rss0 = _peak_rss_mb()
    t0 = time.perf_counter()
    summary = run_batch(
        oracle,
        "cobra",
        trials=TRIALS,
        seed=SEED,
        max_steps=max_steps,
        strategy="vectorized",
    )
    cover_s = time.perf_counter() - t0
    return {
        "topology": label,
        "n": int(oracle.n),
        "draws_per_s": round(draws_per_s),
        "cover_ms": round(cover_s * 1e3, 3),
        "cover_max_steps": max_steps,
        "cover_failures": int(summary.failures),
        "cover_rss_growth_mb": round(_peak_rss_mb() - rss0, 2),
    }


def run_cases(scale: str) -> list[dict]:
    """Measure every registered case at *scale* (``quick``/``full``)."""
    results = []
    for label, builder, full_params, quick_params in CASES:
        oracle = builder(**(quick_params if scale == "quick" else full_params))
        results.append(measure_case(label, oracle, MAX_STEPS[scale]))
    return results


def test_quick_cases_run_and_report():
    results = run_cases("quick")
    assert len(results) == len(CASES)
    for case in results:
        assert case["draws_per_s"] > 0 and case["cover_ms"] > 0


if __name__ == "__main__":
    scale = "quick" if "--quick" in sys.argv[1:] else "full"
    results = run_cases(scale)
    for case in results:
        print(
            f"{case['topology']:>10}  n={case['n']:>8}  "
            f"{case['draws_per_s'] / 1e6:7.1f} Mdraws/s  "
            f"cover {case['cover_ms']:9.1f} ms "
            f"(+{case['cover_rss_growth_mb']:.1f} MB RSS)"
        )
    from _emit import emit_bench_json

    emit_bench_json(
        "implicit",
        {
            "scale": scale,
            "trials": TRIALS,
            "rounds": ROUNDS,
            "peak_rss_mb": round(_peak_rss_mb(), 2),
            "cases": results,
        },
    )
    raise SystemExit(0)
