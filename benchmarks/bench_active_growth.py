"""Benchmark: regenerate the ACTIVE_growth experiment table (quick scale)."""

from conftest import run_experiment


def test_active_growth(benchmark):
    result = run_experiment(benchmark, "ACTIVE_growth")
    assert result.tables
    assert result.findings
