"""Benchmark: vectorized ``run_batch`` vs serial per-trial cobra runs.

The acceptance bar for the unified process API: batched ``run_batch``
for cobra cover on ``grid(32, 2)`` with 32 trials must be at least
3x faster than 32 serial ``cobra_cover_time`` calls.

Both sides are timed with ``time.process_time`` (CPU time — immune to
scheduler noise on shared machines) and best-of-``ROUNDS`` so the
comparison is fair in both directions.

Run directly::

    PYTHONPATH=src python benchmarks/bench_facade_batch.py

or through pytest::

    PYTHONPATH=src pytest benchmarks/bench_facade_batch.py -s
"""

from __future__ import annotations

import time

from repro import grid, run_batch
from repro.core import cobra_cover_time
from repro.sim.rng import spawn_seeds

SEED = 2016
TRIALS = 32
ROUNDS = 9


def measure_speedup() -> tuple[float, float, float]:
    """Return (serial_seconds, batched_seconds, speedup).

    Rounds are interleaved (serial, batched, serial, …) and each side
    takes its best, so a machine-load shift mid-benchmark biases both
    sides equally instead of whichever ran second.
    """
    g = grid(32, 2)

    def serial():
        for s in spawn_seeds(SEED, TRIALS):
            cobra_cover_time(g, seed=s)

    def batched():
        run_batch(g, "cobra", trials=TRIALS, seed=SEED, strategy="vectorized")

    serial()  # warm-up: imports, allocator pools, ufunc dispatch caches
    batched()
    serial_t = batched_t = float("inf")
    for _ in range(ROUNDS):
        t0 = time.process_time()
        serial()
        serial_t = min(serial_t, time.process_time() - t0)
        t0 = time.process_time()
        batched()
        batched_t = min(batched_t, time.process_time() - t0)
    return serial_t, batched_t, serial_t / batched_t


def test_batched_cobra_speedup():
    serial_t, batched_t, speedup = measure_speedup()
    print(
        f"\n32 serial cobra_cover_time calls: {serial_t * 1e3:.1f} ms | "
        f"run_batch vectorized: {batched_t * 1e3:.1f} ms | "
        f"speedup {speedup:.2f}x"
    )
    assert speedup >= 3.0, (
        f"vectorized run_batch only {speedup:.2f}x faster than serial "
        f"({serial_t * 1e3:.1f} ms vs {batched_t * 1e3:.1f} ms)"
    )


if __name__ == "__main__":
    serial_t, batched_t, speedup = measure_speedup()
    print(f"32 serial cobra_cover_time calls : {serial_t * 1e3:7.1f} ms")
    print(f"run_batch (vectorized, 32 trials): {batched_t * 1e3:7.1f} ms")
    print(f"speedup                          : {speedup:7.2f}x (bar: >= 3)")
    from _emit import emit_bench_json

    emit_bench_json(
        "facade_batch",
        {
            "graph": "grid(32, 2)",
            "trials": TRIALS,
            "rounds": ROUNDS,
            "serial_ms": round(serial_t * 1e3, 3),
            "batched_ms": round(batched_t * 1e3, 3),
            "speedup": round(speedup, 3),
            "bar": 3.0,
        },
    )
    raise SystemExit(0 if speedup >= 3.0 else 1)
