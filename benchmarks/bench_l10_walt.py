"""Benchmark: regenerate the L10_walt experiment table (quick scale)."""

from conftest import run_experiment


def test_l10_walt(benchmark):
    result = run_experiment(benchmark, "L10_walt")
    assert result.tables
    assert result.findings
