"""Benchmark: the compiled (numba) backend vs the NumPy engines.

The acceptance bar for the compiled backend: with numba installed, at
least three engines must run >= 3x faster than the NumPy backend at 64
trials on a 10^5-vertex implicit-oracle topology (``hypercube_oracle(17)``,
131072 vertices, lowered to CSR for the kernels).  Step budgets bound
each cell so the comparison times a fixed amount of work; budget
exhaustion (NaN trial values) is fine — both backends exhaust the same
budget on the same seeds, bit-for-bit.

Without numba the script still emits the NumPy timings (with
``numba_ms`` null and ``numba_available`` false) so the committed
baseline tracks the fallback path on machines where the compiled one
cannot run.

Run directly::

    PYTHONPATH=src python benchmarks/bench_kernels_numba.py
"""

from __future__ import annotations

import time

from repro.graphs import hypercube_oracle
from repro.sim import run_batch
from repro.sim.kernels_numba import NUMBA_AVAILABLE

SEED = 2016
TRIALS = 64
ROUNDS = 3
DIM = 17  # 2^17 = 131072 vertices
BAR = 3.0

#: (engine, per-call kwargs) — step budgets (and walt's walker
#: density) keep every cell bounded and the whole run under a minute
CASES: list[tuple[str, dict]] = [
    ("cobra", {"max_steps": 10}),
    ("parallel", {"walkers": 4, "max_steps": 192}),
    ("walt", {"delta": 0.02, "max_steps": 48}),
    ("simple", {"metric": "hit", "target": (1 << DIM) - 1, "max_steps": 4096}),
]


def _best_of(fn) -> float:
    best = float("inf")
    for _ in range(ROUNDS):
        t0 = time.process_time()
        fn()
        best = min(best, time.process_time() - t0)
    return best


def measure() -> list[dict]:
    """Per-engine numpy/numba timings, interleaved best-of-ROUNDS."""
    g = hypercube_oracle(DIM)
    out = []
    for engine, kwargs in CASES:
        def numpy_side():
            run_batch(g, engine, trials=TRIALS, seed=SEED,
                      strategy="vectorized", backend="numpy", **kwargs)

        def numba_side():
            run_batch(g, engine, trials=TRIALS, seed=SEED,
                      strategy="vectorized", backend="numba", **kwargs)

        numpy_side()  # warm-up: allocator pools, (and JIT, with numba)
        if NUMBA_AVAILABLE:
            numba_side()
        numpy_ms = numba_ms = float("inf")
        for _ in range(ROUNDS):
            t0 = time.process_time()
            numpy_side()
            numpy_ms = min(numpy_ms, time.process_time() - t0)
            if NUMBA_AVAILABLE:
                t0 = time.process_time()
                numba_side()
                numba_ms = min(numba_ms, time.process_time() - t0)
        case = {
            "engine": engine,
            "params": {k: v for k, v in kwargs.items()},
            "numpy_ms": round(numpy_ms * 1e3, 3),
            "numba_ms": round(numba_ms * 1e3, 3) if NUMBA_AVAILABLE else None,
            "speedup": (
                round(numpy_ms / numba_ms, 3) if NUMBA_AVAILABLE else None
            ),
        }
        out.append(case)
    return out


def main() -> int:
    cases = measure()
    fast = 0
    for c in cases:
        speedup = c["speedup"]
        print(
            f"{c['engine']:<10} numpy {c['numpy_ms']:9.1f} ms | "
            f"numba {c['numba_ms'] if c['numba_ms'] is not None else '   --'} ms | "
            f"speedup {speedup if speedup is not None else '--'}"
        )
        if speedup is not None and speedup >= BAR:
            fast += 1
    from _emit import emit_bench_json

    emit_bench_json(
        "kernels_numba",
        {
            "graph": f"hypercube_oracle({DIM})",
            "n": 1 << DIM,
            "trials": TRIALS,
            "rounds": ROUNDS,
            "bar": BAR,
            "numba_available": NUMBA_AVAILABLE,
            "cases": cases,
            "engines_past_bar": fast,
        },
        backend="numba" if NUMBA_AVAILABLE else "numpy",
    )
    if not NUMBA_AVAILABLE:
        print("numba not importable: NumPy-backend timings only (pass)")
        return 0
    if fast < 3:
        print(f"only {fast} engines past the {BAR}x bar (need 3)")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
