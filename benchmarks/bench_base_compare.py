"""Benchmark: regenerate the BASE_compare experiment table (quick scale)."""

from conftest import run_experiment


def test_base_compare(benchmark):
    result = run_experiment(benchmark, "BASE_compare")
    assert result.tables
    assert result.findings
