"""Benchmark: regenerate the T8_epochs experiment table (quick scale)."""

from conftest import run_experiment


def test_t8_epochs(benchmark):
    result = run_experiment(benchmark, "T8_epochs")
    assert result.tables
    assert result.findings
