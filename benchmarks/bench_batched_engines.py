"""Benchmark: the generalized batched engines vs serial per-trial runs.

The acceptance bar for the batched-engine layer (mirroring
``bench_facade_batch.py``, which owns the cobra cover engine): on
``grid(32, 2)`` with 32 trials, each new vectorized engine —

* gossip ``push`` / ``pull`` / ``push_pull`` spread,
* ``parallel`` independent-walkers cover,
* ``walt`` ordered-pebble cover,
* cobra ``metric="hit"``,
* ``lazy`` jump-chain cover,
* ``branching`` capped-population cover,
* ``coalescing`` shrinking-walker cover —

must be at least 3x faster than the same 32 trials through
``run_batch(strategy="serial")`` (the seed-spawned per-trial loop the
legacy helpers used).

The coalescing case runs 64 walkers: enough that coverage completes in
seconds, few enough that the serial per-step numpy calls stay
overhead-bound (at hundreds of walkers the serial step is already
vectorized over walkers and the trial-batching margin narrows).

Both sides are timed with ``time.process_time`` (CPU time — immune to
scheduler noise on shared machines), interleaved, best-of-``ROUNDS``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_batched_engines.py

``--quick`` shrinks the graph and round count for CI smoke runs (the
speedup is printed but the exit code ignores the bar — shared runners
are too noisy to gate on a timing ratio).

or through pytest::

    PYTHONPATH=src pytest benchmarks/bench_batched_engines.py -s
"""

from __future__ import annotations

import sys
import time

from repro import grid, run_batch

SEED = 2016
TRIALS = 32
ROUNDS = 3
BAR = 3.0

#: (label, process, extra run_batch kwargs); target=-1 means "last vertex"
CASES = [
    ("push spread", "push", {}),
    ("pull spread", "pull", {}),
    ("push_pull spread", "push_pull", {}),
    ("parallel cover (4 walkers)", "parallel", {"walkers": 4}),
    ("walt cover", "walt", {}),
    ("cobra hit", "cobra", {"metric": "hit", "target": -1}),
    ("lazy cover", "lazy", {}),
    ("branching cover", "branching", {}),
    ("coalescing cover (64 walkers)", "coalescing", {"metric": "cover", "walkers": 64}),
]


def measure(side: int = 32, rounds: int = ROUNDS) -> list[tuple[str, float, float, float]]:
    """Return ``(label, serial_s, vectorized_s, speedup)`` per engine.

    Rounds are interleaved (serial, vectorized, serial, ...) and each
    side takes its best, so a machine-load shift mid-benchmark biases
    both sides equally instead of whichever ran second.
    """
    g = grid(side, 2)
    results = []
    for label, process, extra in CASES:
        kwargs = dict(extra)
        if kwargs.get("target") == -1:
            kwargs["target"] = g.n - 1

        def serial():
            run_batch(g, process, trials=TRIALS, seed=SEED, strategy="serial", **kwargs)

        def vectorized():
            run_batch(
                g, process, trials=TRIALS, seed=SEED, strategy="vectorized", **kwargs
            )

        serial()  # warm-up: imports, allocator pools, ufunc dispatch caches
        vectorized()
        serial_t = vectorized_t = float("inf")
        for _ in range(rounds):
            t0 = time.process_time()
            serial()
            serial_t = min(serial_t, time.process_time() - t0)
            t0 = time.process_time()
            vectorized()
            vectorized_t = min(vectorized_t, time.process_time() - t0)
        results.append((label, serial_t, vectorized_t, serial_t / vectorized_t))
    return results


def test_batched_engine_speedups():
    results = measure()
    for label, ser, vec, speedup in results:
        print(
            f"\n{label}: serial {ser * 1e3:.1f} ms | "
            f"vectorized {vec * 1e3:.1f} ms | speedup {speedup:.2f}x"
        )
    laggards = [(label, s) for label, _, _, s in results if s < BAR]
    assert not laggards, f"engines under the {BAR}x bar: {laggards}"


if __name__ == "__main__":
    quick = "--quick" in sys.argv
    side = 16 if quick else 32
    results = measure(side=side, rounds=1 if quick else ROUNDS)
    worst = min(s for _, _, _, s in results)
    for label, ser, vec, speedup in results:
        print(
            f"{label:28s} serial {ser * 1e3:8.1f} ms | "
            f"vectorized {vec * 1e3:8.1f} ms | {speedup:6.2f}x"
        )
    print(f"worst speedup: {worst:.2f}x (bar: >= {BAR}, grid({side}, 2))")
    from _emit import emit_bench_json

    emit_bench_json(
        "batched_engines",
        {
            "graph": f"grid({side}, 2)",
            "trials": TRIALS,
            "quick": quick,
            "worst_speedup": round(worst, 3),
            "bar": BAR,
            "cases": [
                {
                    "label": label,
                    "serial_ms": round(ser * 1e3, 3),
                    "vectorized_ms": round(vec * 1e3, 3),
                    "speedup": round(speedup, 3),
                }
                for label, ser, vec, speedup in results
            ],
        },
    )
    if quick:
        raise SystemExit(0)  # smoke mode: informational only
    raise SystemExit(0 if worst >= BAR else 1)
