"""Benchmark: regenerate the GRIDCHAIN_drift experiment table (quick scale)."""

from conftest import run_experiment


def test_gridchain_drift(benchmark):
    result = run_experiment(benchmark, "GRIDCHAIN_drift")
    assert result.tables
    assert result.findings
