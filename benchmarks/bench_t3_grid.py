"""Benchmark: regenerate the T3_grid experiment table (quick scale)."""

from conftest import run_experiment


def test_t3_grid(benchmark):
    result = run_experiment(benchmark, "T3_grid")
    assert result.tables
    assert result.findings
