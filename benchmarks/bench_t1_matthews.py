"""Benchmark: regenerate the T1_matthews experiment table (quick scale)."""

from conftest import run_experiment


def test_t1_matthews(benchmark):
    result = run_experiment(benchmark, "T1_matthews")
    assert result.tables
    assert result.findings
