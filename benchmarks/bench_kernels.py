"""Microbenchmarks and DESIGN.md ablations for the hot kernels.

Ablation A1: vectorized cobra step vs the pure-Python reference.
Ablation A2: dense (boolean scatter) vs sparse (sort-unique) coalescing.
Plus throughput benches for neighbor sampling, Walt stepping, and the
batched random-walk cover kernel.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import cobra_step, cobra_step_reference
from repro.core.walt import walt_step_positions
from repro.graphs import grid, random_regular, sample_uniform_neighbors
from repro.sim.rng import resolve_rng
from repro.walks import rw_cover_trials

SEED = 7


@pytest.fixture(scope="module")
def expander():
    return random_regular(4096, 8, seed=SEED)


@pytest.fixture(scope="module")
def grid2d():
    return grid(63, 2)


class TestSamplingKernels:
    def test_sample_uniform_neighbors_throughput(self, benchmark, expander):
        rng = resolve_rng(SEED)
        frontier = np.arange(expander.n, dtype=np.int64)
        benchmark(lambda: sample_uniform_neighbors(expander, frontier, rng))

    def test_cobra_step_full_frontier(self, benchmark, expander):
        rng = resolve_rng(SEED)
        active = np.arange(expander.n, dtype=np.int64)
        scratch = np.zeros(expander.n, dtype=bool)
        benchmark(lambda: cobra_step(expander, active, 2, rng, scratch=scratch))

    def test_walt_step_throughput(self, benchmark, expander):
        rng = resolve_rng(SEED)
        positions = rng.integers(0, expander.n, size=expander.n // 2)
        benchmark(lambda: walt_step_positions(expander, positions, rng))


class TestAblationVectorizedVsReference:
    """A1: the vectorized kernel against the dict/set reference."""

    FRONTIER = 512

    def test_vectorized(self, benchmark, expander):
        rng = resolve_rng(SEED)
        active = np.arange(self.FRONTIER, dtype=np.int64)
        benchmark(lambda: cobra_step(expander, active, 2, rng))

    def test_reference(self, benchmark, expander):
        rng = resolve_rng(SEED)
        active = set(range(self.FRONTIER))
        benchmark(lambda: cobra_step_reference(expander, active, 2, rng))


class TestAblationCoalescing:
    """A2: boolean-scatter vs sort-unique coalescing.

    The production kernel switches on frontier density; these pin both
    code paths at a frontier size near the crossover so the numbers in
    DESIGN.md §5 stay honest.
    """

    def _draws(self, g, size, rng):
        frontier = rng.integers(0, g.n, size=size).astype(np.int64)
        return sample_uniform_neighbors(g, np.repeat(frontier, 2), rng)

    def test_scatter_dense(self, benchmark, expander):
        rng = resolve_rng(SEED)
        picks = self._draws(expander, expander.n // 2, rng)
        mask = np.zeros(expander.n, dtype=bool)

        def scatter():
            mask[:] = False
            mask[picks] = True
            return np.flatnonzero(mask)

        benchmark(scatter)

    def test_unique_dense(self, benchmark, expander):
        rng = resolve_rng(SEED)
        picks = self._draws(expander, expander.n // 2, rng)
        benchmark(lambda: np.unique(picks))

    def test_scatter_sparse(self, benchmark, expander):
        rng = resolve_rng(SEED)
        picks = self._draws(expander, 64, rng)
        mask = np.zeros(expander.n, dtype=bool)

        def scatter():
            mask[:] = False
            mask[picks] = True
            return np.flatnonzero(mask)

        benchmark(scatter)

    def test_unique_sparse(self, benchmark, expander):
        rng = resolve_rng(SEED)
        picks = self._draws(expander, 64, rng)
        benchmark(lambda: np.unique(picks))


class TestBatchedWalks:
    def test_rw_cover_trials_batched(self, benchmark, grid2d):
        benchmark.pedantic(
            lambda: rw_cover_trials(grid2d, trials=8, seed=SEED, max_steps=200_000),
            rounds=1,
            iterations=1,
        )
