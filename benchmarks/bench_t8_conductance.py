"""Benchmark: regenerate the T8_conductance experiment table (quick scale)."""

from conftest import run_experiment


def test_t8_conductance(benchmark):
    result = run_experiment(benchmark, "T8_conductance")
    assert result.tables
    assert result.findings
