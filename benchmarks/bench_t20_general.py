"""Benchmark: regenerate the T20_general experiment table (quick scale)."""

from conftest import run_experiment


def test_t20_general(benchmark):
    result = run_experiment(benchmark, "T20_general")
    assert result.tables
    assert result.findings
