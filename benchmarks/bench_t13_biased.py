"""Benchmark: regenerate the T13_biased experiment table (quick scale)."""

from conftest import run_experiment


def test_t13_biased(benchmark):
    result = run_experiment(benchmark, "T13_biased")
    assert result.tables
    assert result.findings
