"""Legacy shim so `pip install -e .` works without the `wheel` package
(offline environments lacking PEP 660 build deps use the setup.py
develop path via `--no-use-pep517`)."""

from setuptools import setup

setup()
