"""CI smoke: sweep-store interrupt/resume contract, end to end on disk.

Extracted from the old inline ``ci.yml`` heredoc so it is runnable
locally and testable (``tests/test_ci_smokes.py``)::

    PYTHONPATH=src python ci/smoke_sweep_resume.py [STORE_DIR]

The contract it proves, on a real disk store: interrupt a 2x2 campaign
after 2 cells, resume it in a fresh store handle and observe only the
missing cells run, repeat the completed campaign and observe **zero**
computation, and check the resumed values match an uninterrupted
in-memory reference run seed-for-seed.

Exits non-zero (assertion) on any violation.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

if __name__ == "__main__":  # runnable without PYTHONPATH fiddling
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.store import Campaign, ResultStore, SweepSpec


def build_spec() -> SweepSpec:
    """The 2x2 smoke campaign (4 cells, seconds of work)."""
    return SweepSpec(
        name="ci-smoke",
        process="cobra",
        graph="grid",
        graph_grid={"n": [6, 8], "d": [2]},
        params_grid={"k": [1, 2]},
        trials=3,
    )


def main(store_dir: str) -> int:
    """Run the interrupt/resume smoke against *store_dir*.

    Parameters
    ----------
    store_dir : str
        Directory for the durable store (created on first write).

    Returns
    -------
    int
        0 on success (assertions abort otherwise).
    """
    spec = build_spec()
    cells = spec.expand()
    assert len(cells) == 4

    # interrupted campaign: 2 cells, then killed
    first = Campaign(spec, ResultStore(store_dir)).run(max_cells=2)
    assert len(first.ran) == 2 and len(first.pending) == 2, first

    # resume in a fresh handle: only the missing cells run
    resumed = Campaign(spec, ResultStore(store_dir)).run()
    assert len(resumed.ran) == 2 and len(resumed.cached) == 2, resumed

    # completed sweep: the repeat pass is cache-only
    repeat = Campaign(spec, ResultStore(store_dir)).run()
    assert repeat.ran == [] and len(repeat.cached) == 4, repeat

    # seed-for-seed parity with an uninterrupted in-memory run
    reference = ResultStore()
    Campaign(spec, reference).run()
    disk = ResultStore(store_dir)
    for cell in cells:
        a = disk.get(cell)["result"]["values"]
        b = reference.get(cell)["result"]["values"]
        assert a == b, f"resumed cell {cell.hash[:12]} diverged"
    print("sweep store smoke: interrupt/resume OK, repeat pass cache-only")
    return 0


if __name__ == "__main__":
    if len(sys.argv) > 1:
        raise SystemExit(main(sys.argv[1]))
    with tempfile.TemporaryDirectory() as tmp:
        raise SystemExit(main(f"{tmp}/store"))
