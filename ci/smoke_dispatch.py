"""CI smoke: two real ``sweep work`` OS processes drain one campaign.

The multi-worker acceptance contract, proven with genuinely separate
processes coordinating only through the shared store directory::

    PYTHONPATH=src python ci/smoke_dispatch.py [STORE_DIR]

Two ``cobra-experiments sweep work DEMO_grid2x2 --trace`` workers are
launched concurrently against one store.  Afterward:

* the campaign is complete and ``sweep fsck`` exits 0 (clean store);
* every stored cell's values are **identical** to an uninterrupted
  single-worker ``Campaign.run()`` reference (content-derived seeds —
  worker placement cannot matter);
* the interleaved ``events.jsonl`` round-trips with **no torn lines**:
  exactly cells × phases phase records, every one attributed to one of
  the two workers, and every stored cell's provenance names the worker
  that computed it;
* ``sweep report`` renders a straggler table attributing every cell;
* ``sweep compact`` prunes the claim ledger and the store stays clean.

Runnable locally and testable (``tests/test_ci_smokes.py``).  Exits
non-zero on any violation.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
SWEEP = "DEMO_grid2x2"
SEED = 0


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{REPO_SRC}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(REPO_SRC)
    )
    return env


def _sweep_cli(*args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", "sweep", *args],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait(proc: subprocess.Popen, what: str) -> str:
    out, _ = proc.communicate(timeout=300)
    print(f"--- {what} (exit {proc.returncode}) ---")
    print(out, end="")
    assert proc.returncode == 0, f"{what} failed with exit {proc.returncode}"
    return out


def main(store_dir: str) -> int:
    """Run the dispatch smoke against *store_dir*.

    Parameters
    ----------
    store_dir : str
        Shared store directory the two workers drain.

    Returns
    -------
    int
        0 on success (assertions abort otherwise).
    """
    from repro.store import Campaign, ResultStore, fsck
    from repro.store.sweeps import build_sweep

    (spec,) = build_sweep(SWEEP, seed=SEED)
    cells = spec.expand()
    assert len(cells) == 4

    # uninterrupted single-worker reference, in memory
    reference = ResultStore()
    Campaign(spec, reference).run()

    # two concurrent OS-process workers drain the shared store; --wait
    # keeps each alive until every cell is stored by *someone*
    workers = [
        _sweep_cli(
            "work", SWEEP, "--store", store_dir, "--seed", str(SEED),
            "--owner", f"smoke-w{i}", "--wait", "--trace",
        )
        for i in range(2)
    ]
    outputs = [_wait(proc, f"worker {i}") for i, proc in enumerate(workers)]

    # between them the workers computed every cell exactly once
    # (bar a benign lease-expiry recompute, impossible at this TTL)
    ran_total = sum(int(out.split("ran ")[1].split(",")[0]) for out in outputs)
    assert ran_total == len(cells), f"workers ran {ran_total} cells, not {len(cells)}"

    # fsck via the CLI: clean store is exit 0
    _wait(_sweep_cli("fsck", "--store", store_dir), "fsck")

    # value-for-value identical to the single-worker reference, and
    # provenance attributes every cell to the worker that computed it
    store = ResultStore(store_dir)
    for cell in cells:
        record = store.get(cell)
        assert record is not None, f"cell {cell.hash[:12]} missing after drain"
        a = record["result"]["values"]
        b = reference.get(cell)["result"]["values"]
        assert a == b, f"cell {cell.hash[:12]} diverged across workers"
        worker = record["provenance"]["worker"]
        assert worker.startswith("smoke-w"), (
            f"cell {cell.hash[:12]} attributed to {worker!r}"
        )

    # the two processes interleaved their telemetry through one flock:
    # the event log round-trips with zero torn lines and exactly
    # cells × phases phase records, each attributed to a worker
    from repro.obs import EventLog
    from repro.store.campaign import CELL_PHASES

    log = EventLog(store_dir)
    assert log.torn_lines() == 0, f"{log.torn_lines()} torn event lines"
    phases = log.frame().filter(kind="phase")
    expected = len(cells) * len(CELL_PHASES)
    assert len(phases) == expected, (
        f"{len(phases)} phase events, expected {expected}"
    )
    event_workers = set(phases.column("worker"))
    assert event_workers <= {"smoke-w0", "smoke-w1"}, event_workers

    # the straggler report attributes every cell to a smoke worker
    report_out = _wait(
        _sweep_cli("report", SWEEP, "--store", store_dir, "--seed", str(SEED)),
        "report",
    )
    assert "worker attribution" in report_out, report_out
    assert "smoke-w" in report_out, report_out

    # compaction prunes the ledger and the store stays clean
    _wait(_sweep_cli("compact", "--store", store_dir), "compact")
    report = fsck(ResultStore(store_dir))
    assert report.clean and report.cells == len(cells), report.summary()
    print(
        "dispatch smoke: 2-worker drain value-identical, "
        f"{expected} events untorn, fsck clean"
    )
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_SRC))
    if len(sys.argv) > 1:
        raise SystemExit(main(sys.argv[1]))
    with tempfile.TemporaryDirectory() as tmp:
        raise SystemExit(main(f"{tmp}/store"))
