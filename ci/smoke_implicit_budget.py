"""CI smoke: a million-vertex torus cover cell under a memory budget.

The implicit-topology acceptance contract, end to end::

    PYTHONPATH=src python ci/smoke_implicit_budget.py

The full-scale ``SCALE_torus_vs_hypercube/torus`` cell — cobra cover
on a 10⁶-vertex torus served by ``torus_oracle`` — is driven through
a real ``Campaign``/``run_batch`` and must:

* **materialise zero CSR graphs**: ``Graph.__init__`` is counted for
  the duration of the run, and any construction fails the smoke (the
  whole point of the oracle layer is that no edge arrays ever exist);
* stay under a **peak-RSS ceiling**: the process high-water growth
  across the run must be below ``RSS_CEILING_MB`` (generous against
  the ~70 MB the cell actually needs, fatal for anything that
  allocates per-edge or dense per-trial state);
* **complete through the store**: the cell records a summary whose
  per-trial cover times are NaN — coverage cannot finish inside the
  deliberately small step budget; the cell measures footprint, and a
  budget-exhausted trial is the documented outcome, not an error.

Runnable locally and testable (``tests/test_ci_smokes.py``).  Exits
non-zero on any violation.
"""

from __future__ import annotations

import math
import sys
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
SWEEP = "SCALE_torus_vs_hypercube"
SEED = 0
RSS_CEILING_MB = 500.0


def main() -> int:
    """Run the memory-budget smoke.

    Returns
    -------
    int
        0 on success (assertions abort otherwise).
    """
    from repro.graphs.base import Graph
    from repro.obs.memory import peak_rss_mb
    from repro.store import Campaign, ResultStore
    from repro.store.sweeps import build_sweep

    spec = next(
        s
        for s in build_sweep(SWEEP, scale="full", seed=SEED)
        if s.name.endswith("/torus")
    )
    (cell,) = spec.expand()

    constructed: list[str] = []
    original_init = Graph.__init__

    def counting_init(self, *args, **kwargs):
        constructed.append(type(self).__name__)
        return original_init(self, *args, **kwargs)

    rss_before = peak_rss_mb()
    store = ResultStore()
    Graph.__init__ = counting_init  # type: ignore[method-assign]
    try:
        report = Campaign(spec, store).run()
    finally:
        Graph.__init__ = original_init  # type: ignore[method-assign]
    rss_growth = peak_rss_mb() - rss_before

    assert report.complete and len(report.ran) == 1, report
    record = store.get(cell)
    assert record is not None, "cell missing after the campaign run"
    prov = record["provenance"]
    assert prov["graph_n"] == 1_000_000, prov
    assert prov["graph_kind"] == "torus", prov
    assert not constructed, (
        f"the oracle cell materialised CSR graph(s): {constructed} — "
        "edge arrays must never be allocated on the implicit path"
    )
    assert rss_growth <= RSS_CEILING_MB, (
        f"peak RSS grew {rss_growth:.1f} MB over the cell run "
        f"(ceiling {RSS_CEILING_MB} MB)"
    )
    values = record["result"]["values"]
    assert len(values) == spec.trials and all(math.isnan(v) for v in values), (
        "expected every trial to exhaust the deliberately small budget "
        f"(NaN cover times); got {values}"
    )
    print(
        f"implicit budget smoke: 10^6-vertex torus cell ran with 0 CSR "
        f"graphs, peak-RSS growth {rss_growth:.1f} MB "
        f"(ceiling {RSS_CEILING_MB:.0f} MB)"
    )
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_SRC))
    raise SystemExit(main())
