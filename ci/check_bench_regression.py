"""Benchmark regression gate: fresh ``BENCH_*.json`` vs committed baselines.

CI regenerates every benchmark document into an artifact directory;
this script compares each lower-is-better timing (any numeric field
whose name ends in ``_ms``, at the top level or inside ``cases``
entries) against the baseline committed at the repo root and fails
when a tracked engine slowed down by more than the threshold.

The full trajectory — baseline, fresh, delta — prints as a table
either way, so the uploaded CI log doubles as a perf history entry.

Missing *individual* counterparts never fail the gate, only warn: a
brand-new benchmark has no baseline yet, a retired baseline has no
fresh run, and timings whose value is ``null`` (the numba columns on
machines without numba) are structurally absent rather than regressed.
But baselines with an entirely empty fresh directory fail hard — that
means the benchmark step itself broke, and warning through it would
let a dead bench job pass forever.

Usage::

    python ci/check_bench_regression.py --fresh bench-artifacts \\
        [--baseline .] [--threshold 0.20]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def collect_metrics(doc: dict) -> dict[str, float]:
    """Flatten a benchmark document to ``{metric path: milliseconds}``.

    Top-level ``*_ms`` fields keep their name; ``cases`` entries are
    keyed by their identifying field (``engine``, ``topology``, or the
    index) — ``cases[hypercube].cover_ms``.  Null timings are skipped.
    """
    out: dict[str, float] = {}
    for key, value in doc.items():
        if key.endswith("_ms") and isinstance(value, (int, float)):
            out[key] = float(value)
    for i, case in enumerate(doc.get("cases", [])):
        if not isinstance(case, dict):
            continue
        label = case.get("engine") or case.get("topology") or str(i)
        for key, value in case.items():
            if key.endswith("_ms") and isinstance(value, (int, float)):
                out[f"cases[{label}].{key}"] = float(value)
    return out


def load_bench_docs(directory: Path) -> dict[str, dict]:
    """``{bench name: document}`` for every BENCH_*.json in *directory*."""
    docs = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        doc = json.loads(path.read_text(encoding="utf-8"))
        docs[doc.get("bench", path.stem[len("BENCH_"):])] = doc
    return docs


def compare(
    baseline: dict[str, dict],
    fresh: dict[str, dict],
    threshold: float,
) -> tuple[list[tuple[str, str, float, float, float]], list[str]]:
    """Return (rows, warnings); a row is (bench, metric, base, new, ratio)."""
    rows: list[tuple[str, str, float, float, float]] = []
    warnings: list[str] = []
    for name in sorted(baseline):
        if name not in fresh:
            warnings.append(f"baseline {name!r} has no fresh run — skipped")
            continue
        base_metrics = collect_metrics(baseline[name])
        new_metrics = collect_metrics(fresh[name])
        for metric in sorted(base_metrics):
            if metric not in new_metrics:
                warnings.append(
                    f"{name}:{metric} missing from the fresh run — skipped"
                )
                continue
            base, new = base_metrics[metric], new_metrics[metric]
            ratio = new / base if base > 0 else 1.0
            rows.append((name, metric, base, new, ratio))
    for name in sorted(set(fresh) - set(baseline)):
        warnings.append(f"fresh {name!r} has no committed baseline yet")
    return rows, warnings


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh", required=True, help="directory with freshly emitted BENCH_*.json"
    )
    parser.add_argument(
        "--baseline", default=".", help="directory with committed baselines"
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.20,
        help="maximal tolerated slowdown fraction (0.20 = +20%%)",
    )
    args = parser.parse_args(argv)

    baseline = load_bench_docs(Path(args.baseline))
    fresh = load_bench_docs(Path(args.fresh))
    if not baseline:
        print(f"no baselines under {args.baseline!r}; nothing to gate")
        return 0
    if not fresh:
        # baselines exist but the fresh run produced nothing at all:
        # that's a broken benchmark step (crash, wrong directory), not
        # a per-metric gap — warning through it would let a silently
        # dead bench job pass the gate forever
        print(
            f"error: {len(baseline)} committed baseline(s) but no fresh "
            f"BENCH_*.json under {args.fresh!r} — the benchmark step "
            "emitted nothing",
            file=sys.stderr,
        )
        return 1
    rows, warnings = compare(baseline, fresh, args.threshold)

    width = max((len(f"{b}:{m}") for b, m, *_ in rows), default=20)
    print(f"{'metric':<{width}}  {'base ms':>10}  {'fresh ms':>10}  {'delta':>8}")
    failures = 0
    for bench, metric, base, new, ratio in rows:
        slow = ratio > 1.0 + args.threshold
        failures += slow
        flag = "  REGRESSED" if slow else ""
        print(
            f"{bench + ':' + metric:<{width}}  {base:>10.2f}  {new:>10.2f}  "
            f"{(ratio - 1) * 100:>+7.1f}%{flag}"
        )
    for w in warnings:
        print(f"warning: {w}")
    if failures:
        print(
            f"{failures} timing(s) regressed more than "
            f"{args.threshold * 100:.0f}% vs the committed baselines"
        )
        return 1
    print(f"all {len(rows)} tracked timings within {args.threshold * 100:.0f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
