"""CI smoke: the sweep service end to end, with no shared filesystem.

The PR-10 acceptance flow as real OS processes::

    PYTHONPATH=src python ci/smoke_service.py

* ``sweep serve --store :memory: --port 0`` boots the HTTP front end
  over an in-process CAS backend; the first stdout line
  (``serving … at http://host:port``) is parsed for the bound port;
* ``sweep declare DEMO_grid2x2`` announces the campaign in the served
  store's registry — through the blob seam, over HTTP;
* a ``sweep work --loop`` daemon polls the registry and drains all
  four cells through ``HTTPCASBackend`` (its only channel to the
  store is the server's conditional-put blob API);
* every drained cell, fetched back via ``GET /cell/<hash>``, is
  **value-for-value identical** to an uninterrupted local
  ``Campaign.run()`` reference;
* a ``GET /frame?groupby=…`` response parses as the canonical
  ``repro.frame/1`` document and matches the reference's groupby
  rows; a second GET with ``If-None-Match`` answers **304** with an
  empty body;
* ``sweep fsck --store http://…`` exits 0 against the served store;
* SIGTERM stops the worker (``stopped on signal`` — the lease-release
  path) and the server (``serve: stopped``), both with exit 0.

Runnable locally and testable (``tests/test_ci_smokes.py``).  Exits
non-zero on any violation.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import urllib.error
import urllib.request
from pathlib import Path

REPO_SRC = Path(__file__).resolve().parent.parent / "src"
SWEEP = "DEMO_grid2x2"
SEED = 0


def _env() -> dict[str, str]:
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        f"{REPO_SRC}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH")
        else str(REPO_SRC)
    )
    return env


def _sweep_cli(*args: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.experiments", "sweep", *args],
        env=_env(),
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def _wait(proc: subprocess.Popen, what: str) -> str:
    out, _ = proc.communicate(timeout=300)
    print(f"--- {what} (exit {proc.returncode}) ---")
    print(out, end="")
    assert proc.returncode == 0, f"{what} failed with exit {proc.returncode}"
    return out


def _terminate(proc: subprocess.Popen, what: str) -> str:
    """SIGTERM a daemon and require the clean exit-0 shutdown path."""
    proc.send_signal(signal.SIGTERM)
    return _wait(proc, what)


def _get(url: str, **headers: str):
    """One GET -> (status, headers, bytes); 304/404 are data, not errors."""
    req = urllib.request.Request(url, headers=headers)
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def main() -> int:
    """Run the service smoke (serve + declare + loop worker over HTTP).

    Returns
    -------
    int
        0 on success (assertions abort otherwise).
    """
    from repro.store import Campaign, Frame, ResultStore
    from repro.store.sweeps import build_sweep

    (spec,) = build_sweep(SWEEP, seed=SEED)
    cells = spec.expand()
    assert len(cells) == 4

    # uninterrupted single-process reference, in memory
    reference = ResultStore()
    Campaign(spec, reference).run()

    server = _sweep_cli("serve", "--store", ":memory:", "--port", "0")
    worker = None
    try:
        # the documented supervisor parse point: first stdout line
        banner = server.stdout.readline().strip()
        assert " at http://" in banner, f"unexpected serve banner: {banner!r}"
        url = banner.rsplit(" at ", 1)[1]
        print(f"--- serve bound at {url} ---")

        _wait(
            _sweep_cli(
                "declare", SWEEP, "--store", url, "--seed", str(SEED)
            ),
            "declare",
        )
        worker = _sweep_cli(
            "work", "--loop", "--store", url,
            "--owner", "smoke-loop", "--interval", "0.2",
        )

        # the daemon's own completion line gates the shutdown: once
        # `ran 4 cell(s)` prints, drain() has returned, so every
        # record is already committed behind the blob API
        while True:
            line = worker.stdout.readline()
            assert line, "worker exited before draining the declaration"
            print(f"[worker] {line}", end="")
            if f"ran {len(cells)} cell(s)" in line:
                break

        # every cell resolves through the point-lookup route, with the
        # content hash as its strong ETag
        records: dict[str, dict] = {}
        for cell in cells:
            status, headers, body = _get(f"{url}/cell/{cell.hash}")
            assert status == 200, f"cell {cell.hash[:12]} answered {status}"
            assert headers["ETag"] == f'"{cell.hash}"'
            records[cell.hash] = json.loads(body)

        # value-for-value identical to the local reference — worker
        # placement and transport cannot matter (content-derived seeds)
        for cell in cells:
            a = records[cell.hash]["result"]["values"]
            b = reference.get(cell)["result"]["values"]
            assert a == b, f"cell {cell.hash[:12]} diverged over HTTP"
        print(f"--- {len(cells)} cells value-identical to Campaign.run() ---")

        # one canonical frame groupby over HTTP matches the reference
        status, headers, body = _get(
            f"{url}/frame?groupby=g_n&aggregate=mean&column=mean"
        )
        assert status == 200, f"/frame answered {status}"
        remote = Frame.from_json(body.decode("utf-8"))
        local = Frame(reference.frame().aggregate("g_n", column="mean"))
        assert remote.rows == local.rows, "HTTP frame diverged from reference"

        # strong ETag: the second GET revalidates to 304, empty body
        etag = headers["ETag"]
        status, _, body = _get(
            f"{url}/frame?groupby=g_n&aggregate=mean&column=mean",
            **{"If-None-Match": etag},
        )
        assert status == 304 and body == b"", (
            f"revalidation answered {status} with {len(body)} bytes"
        )
        print("--- frame groupby matches; revalidation is 304 ---")

        # fsck over the same URL store: clean is exit 0
        _wait(_sweep_cli("fsck", "--store", url), "fsck")

        # clean SIGTERM shutdown on both daemons
        out = _terminate(worker, "worker shutdown")
        worker = None
        assert "stopped on signal" in out, out
        out = _terminate(server, "serve shutdown")
        assert "serve: stopped" in out, out
    finally:
        for proc in (worker, server):
            if proc is not None and proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)

    print(
        "service smoke: declare + loop-worker drain over HTTP "
        "value-identical, frame 304 revalidation, fsck clean"
    )
    return 0


if __name__ == "__main__":
    sys.path.insert(0, str(REPO_SRC))
    raise SystemExit(main())
